"""Tests for NFA families, random generators and workload suites."""

from __future__ import annotations

import pytest

from repro.automata import families, random_gen
from repro.automata.exact import count_exact
from repro.automata.regex import compile_regex
from repro.workloads.generator import (
    Workload,
    accuracy_suite,
    application_suite,
    scaling_suite_epsilon,
    scaling_suite_length,
    scaling_suite_states,
)


class TestFamilies:
    def test_registry_builders_produce_nfas(self):
        nfa = families.build_family("parity", ones_modulus=3)
        assert nfa.num_states == 3

    def test_registry_unknown_name(self):
        with pytest.raises(KeyError):
            families.build_family("nope")

    def test_substring_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            families.substring_nfa("")

    def test_suffix_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            families.suffix_nfa("")

    def test_parity_invalid_modulus(self):
        with pytest.raises(ValueError):
            families.parity_nfa(0)

    def test_divisibility_invalid(self):
        with pytest.raises(ValueError):
            families.divisibility_nfa(0)

    def test_blocks_invalid(self):
        with pytest.raises(ValueError):
            families.blocks_nfa(0)

    def test_ladder_invalid(self):
        with pytest.raises(ValueError):
            families.ladder_nfa(0)

    def test_union_of_patterns_requires_patterns(self):
        with pytest.raises(ValueError):
            families.union_of_patterns_nfa([])

    def test_substring_family_semantics(self):
        nfa = families.substring_nfa("010")
        assert nfa.accepts("110100")
        assert not nfa.accepts("111111")

    def test_suffix_family_semantics(self):
        nfa = families.suffix_nfa("01")
        assert nfa.accepts("1101")
        assert not nfa.accepts("0110")

    def test_divisibility_semantics(self):
        nfa = families.divisibility_nfa(3)
        assert nfa.accepts("110")  # 6
        assert not nfa.accepts("111")  # 7

    def test_integer_pattern_accepted(self):
        # CLI family arguments arrive as ints; builders coerce them.
        nfa = families.substring_nfa(101)
        assert nfa.accepts("0101")

    def test_default_benchmark_suite_members(self):
        suite = families.default_benchmark_suite()
        assert len(suite) >= 6
        names = [name for name, _nfa in suite]
        assert len(names) == len(set(names))
        for _name, nfa in suite:
            assert nfa.num_states >= 1


class TestRandomGenerators:
    def test_random_nfa_reproducible(self):
        first = random_gen.random_nfa(6, seed=42)
        second = random_gen.random_nfa(6, seed=42)
        assert first == second

    def test_random_nfa_different_seeds_differ(self):
        assert random_gen.random_nfa(8, seed=1) != random_gen.random_nfa(8, seed=2)

    def test_random_nfa_size_and_validity(self):
        nfa = random_gen.random_nfa(7, density=0.4, seed=3)
        assert nfa.num_states == 7
        assert nfa.accepting  # at least one accepting state

    def test_random_nfa_connected(self):
        nfa = random_gen.random_nfa(10, density=0.05, seed=4, ensure_connected=True)
        assert nfa.forward_reachable() == nfa.states

    def test_random_nfa_invalid_size(self):
        with pytest.raises(ValueError):
            random_gen.random_nfa(0)

    def test_random_nonempty_nfa(self):
        nfa = random_gen.random_nonempty_nfa(6, length=8, seed=5)
        assert not nfa.is_empty_slice(8)

    def test_random_dfa_is_deterministic(self):
        nfa = random_gen.random_dfa(5, seed=6)
        for state in nfa.states:
            for symbol in nfa.alphabet:
                assert len(nfa.successors(state, symbol)) == 1

    def test_random_word_length_and_alphabet(self):
        word = random_gen.random_word(12, seed=7)
        assert len(word) == 12
        assert set(word) <= {"0", "1"}

    def test_random_regex_compiles(self):
        for seed in range(5):
            pattern = random_gen.random_regex(depth=3, seed=seed)
            nfa = compile_regex(pattern, alphabet=("0", "1"))
            assert nfa.num_states >= 1

    def test_random_labeled_graph(self):
        edges = random_gen.random_labeled_graph(6, 10, labels=("a", "b"), seed=8)
        assert len(edges) == 10
        assert len(set(edges)) == 10
        for source, label, target in edges:
            assert label in ("a", "b")
            assert source.startswith("v") and target.startswith("v")


class TestWorkloadSuites:
    def test_workload_exact_count_and_description(self):
        workload = Workload(name="fib", nfa=families.no_consecutive_ones_nfa(), length=6)
        assert workload.exact_count() == count_exact(workload.nfa, 6)
        assert workload.describe()["name"] == "fib"
        assert workload.num_states == 2

    def test_accuracy_suite_contents(self):
        suite = accuracy_suite(length=6)
        assert len(suite) >= 6
        assert len(set(suite.names())) == len(suite)
        for workload in suite:
            assert workload.length == 6

    def test_scaling_length_suite_shares_automaton(self):
        suite = scaling_suite_length(lengths=(3, 5, 7))
        automata = {id(workload.nfa) for workload in suite}
        assert len(automata) == 1
        assert [workload.length for workload in suite] == [3, 5, 7]

    def test_scaling_states_suite_sizes(self):
        suite = scaling_suite_states(state_counts=(3, 5), length=6)
        assert [workload.num_states for workload in suite] == [3, 5]
        for workload in suite:
            assert not workload.nfa.is_empty_slice(6)

    def test_scaling_epsilon_suite(self):
        suite = scaling_suite_epsilon(epsilons=(1.0, 0.5), length=6)
        assert [workload.epsilon for workload in suite] == [1.0, 0.5]

    def test_application_suite_products_nonempty(self):
        suite = application_suite(seed=3)
        assert len(suite) == 3
        for workload in suite:
            assert workload.nfa.num_states >= 1
