"""Seed-sweep statistical test: the (epsilon, delta) envelope, continuously.

Runs the FPRAS and the Monte-Carlo baseline over 30 seeds on three small
fixture automata with exact ground truth, and asserts the paper's headline
claim operationally: the observed relative error stays within the epsilon
bound for all but at most a delta fraction of seeds.  The per-seed
estimates are additionally locked against a golden fixture
(``tests/fixtures/accuracy_trend_golden.json``), so any change in estimator
behaviour shows up as a *diff* against the goldens — reviewable, explicit —
rather than as a statistical flake.

The whole module is marked ``statistical`` and therefore excluded from
tier-1 (``pytest -x -q``); the CI ``audit`` job runs it with
``pytest -m statistical``.

Regenerating the goldens after an intentional estimator change::

    PYTHONPATH=src python tests/test_accuracy_trend.py --regen
"""

from __future__ import annotations

import json
import os
import sys

import pytest

from repro.automata import families
from repro.automata.exact import count_exact
from repro.counting.api import count
from repro.counting.params import ParameterScale

pytestmark = pytest.mark.statistical

#: The sweep: one (epsilon, delta) target over 30 seeds per instance.
EPSILON = 0.4
DELTA = 0.2
SEEDS = 30
SCALE_SPEC = {"sample_cap": 12, "union_trial_cap": 16}
MC_SAMPLES = 8000

GOLDEN_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "accuracy_trend_golden.json"
)


def _instances():
    """The fixture automata: overlapping-pattern, counting, and modular."""
    return [
        ("substring_101_n9", families.substring_nfa("101"), 9),
        ("no_consecutive_ones_n10", families.no_consecutive_ones_nfa(), 10),
        ("divisibility_7_n9", families.divisibility_nfa(7), 9),
    ]


def run_sweep():
    """Execute the full seed sweep and return the golden-file document."""
    scale = ParameterScale.practical(**SCALE_SPEC)
    document = {
        "epsilon": EPSILON,
        "delta": DELTA,
        "seeds": SEEDS,
        "scale": SCALE_SPEC,
        "montecarlo_samples": MC_SAMPLES,
        "instances": {},
    }
    for name, nfa, length in _instances():
        exact = count_exact(nfa, length)
        fpras = [
            count(
                nfa, length, method="fpras", epsilon=EPSILON, delta=DELTA,
                seed=seed, scale=scale,
            ).estimate
            for seed in range(SEEDS)
        ]
        montecarlo = [
            count(
                nfa, length, method="montecarlo", seed=seed,
                num_samples=MC_SAMPLES,
            ).estimate
            for seed in range(SEEDS)
        ]
        document["instances"][name] = {
            "exact": exact,
            "fpras": fpras,
            "montecarlo": montecarlo,
        }
    return document


@pytest.fixture(scope="module")
def sweep():
    """The sweep, executed once and shared by every assertion below."""
    return run_sweep()


@pytest.fixture(scope="module")
def golden():
    if not os.path.exists(GOLDEN_PATH):
        pytest.fail(
            f"golden fixture {GOLDEN_PATH} is missing; regenerate it with "
            "`PYTHONPATH=src python tests/test_accuracy_trend.py --regen`"
        )
    with open(GOLDEN_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _relative_errors(entry, method):
    exact = entry["exact"]
    return [abs(estimate - exact) / exact for estimate in entry[method]]


class TestEpsilonDeltaEnvelope:
    def test_sweep_configuration_matches_goldens(self, sweep, golden):
        for key in ("epsilon", "delta", "seeds", "scale", "montecarlo_samples"):
            assert sweep[key] == golden[key], key
        assert set(sweep["instances"]) == set(golden["instances"])

    def test_fpras_relative_error_within_epsilon(self, sweep):
        """All but a delta fraction of seeds stay inside the epsilon bound."""
        for name, entry in sweep["instances"].items():
            errors = _relative_errors(entry, "fpras")
            failures = sum(1 for error in errors if error > EPSILON)
            assert failures / len(errors) <= DELTA, (
                f"{name}: {failures}/{len(errors)} seeds outside epsilon={EPSILON}"
            )
            # The bulk of the sweep should sit well inside the envelope —
            # mean error above epsilon/2 means the estimator drifted even if
            # no single seed failed yet.
            mean_error = sum(errors) / len(errors)
            assert mean_error <= EPSILON / 2, (name, mean_error)
            assert max(errors) <= 2 * EPSILON, (name, max(errors))

    def test_montecarlo_baseline_is_sane(self, sweep):
        """The no-guarantee baseline stays loosely accurate on dense slices."""
        for name, entry in sweep["instances"].items():
            errors = _relative_errors(entry, "montecarlo")
            assert max(errors) <= 0.25, (name, max(errors))

    def test_per_seed_estimates_match_goldens_exactly(self, sweep, golden):
        """Drift is a diff, not a flake: every estimate is locked bit-exactly.

        A failure here means estimator behaviour changed.  If the change is
        intentional, regenerate the goldens (see the module docstring) and
        review the diff — the envelope tests above still guard the claim.
        """
        for name, entry in sweep["instances"].items():
            locked = golden["instances"][name]
            assert entry["exact"] == locked["exact"], name
            for method in ("fpras", "montecarlo"):
                for seed, (observed, expected) in enumerate(
                    zip(entry[method], locked[method])
                ):
                    assert repr(observed) == repr(expected), (
                        f"{name}/{method} seed {seed}: estimate {observed!r} "
                        f"drifted from golden {expected!r}"
                    )

    def test_failure_fraction_is_recorded_in_goldens(self, golden):
        """The locked trajectory itself satisfies the envelope (meta-check)."""
        for name, entry in golden["instances"].items():
            errors = _relative_errors(entry, "fpras")
            failures = sum(1 for error in errors if error > golden["epsilon"])
            assert failures / len(errors) <= golden["delta"], name


def _regenerate() -> int:
    document = run_sweep()
    os.makedirs(os.path.dirname(GOLDEN_PATH), exist_ok=True)
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {GOLDEN_PATH}")
    for name, entry in document["instances"].items():
        errors = _relative_errors(entry, "fpras")
        print(
            f"  {name}: exact={entry['exact']} max_rel_error={max(errors):.4f} "
            f"failures={sum(1 for e in errors if e > document['epsilon'])}/{len(errors)}"
        )
    return 0


if __name__ == "__main__":
    if "--regen" in sys.argv:
        sys.exit(_regenerate())
    print(__doc__)
    sys.exit(2)
