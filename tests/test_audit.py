"""Tests for the audit pipeline: manifests, scenario matrices, drift gates.

Three layers of coverage:

* **Property-based round-trips** — a Hypothesis-style seeded generator
  draws adversarial floats (negative zero, subnormals, huge exponents,
  infinities) and random report shapes, and asserts that
  ``CountReport.to_dict``/``from_dict`` and the manifest schema survive a
  JSON round trip bit-exactly.  The generator is deterministic (one seeded
  stream, no external dependency), so a failure is a regression, not a
  flake.
* **Schema and matrix semantics** — manifest validation rejects every
  malformed document shape; one spec dict expands factorially into the
  declared number of scenarios with stable, unique ids.
* **The gate itself gets tested** — ``audit.diff`` passes an identical
  manifest pair and flags synthetically perturbed ones (inflated wall
  time, estimate nudged past epsilon, dropped scenario, delta-coverage
  shortfall), including through the ``repro audit-diff`` CLI exit code.
"""

from __future__ import annotations

import copy
import json
import math
import random

import pytest

from repro.audit.diff import DiffThresholds, diff_manifests
from repro.audit.manifest import (
    ManifestBuilder,
    build_manifest,
    load_manifest,
    manifest_filename,
    run_matrix,
    run_scenarios,
    validate_manifest,
    write_manifest,
)
from repro.audit.scenarios import DEFAULT_MATRIX, Scenario, expand_matrix
from repro.cli import main as cli_main
from repro.counting.api import CountingSession, CountReport
from repro.errors import AuditError

# ----------------------------------------------------------------------
# Hypothesis-style strategies: seeded draws over adversarial values
# ----------------------------------------------------------------------
#: Floats chosen to break naive serialisation: signed zeros, the smallest
#: subnormals, numbers at both ends of the exponent range, infinities, and
#: values with no short decimal form.
ADVERSARIAL_FLOATS = [
    0.0,
    -0.0,
    5e-324,                     # smallest positive subnormal
    -5e-324,
    2.2250738585072014e-308,    # smallest positive normal
    1.7976931348623157e308,     # largest finite
    -1.7976931348623157e308,
    float("inf"),
    float("-inf"),
    0.1 + 0.2,                  # 0.30000000000000004
    1.0 / 3.0,
    9007199254740993.0,         # above 2**53
]


def draw_float(rng: random.Random, finite: bool = False) -> float:
    """One adversarial or random-exponent float from the seeded stream."""
    if rng.random() < 0.5:
        value = rng.choice(ADVERSARIAL_FLOATS)
        if finite and not math.isfinite(value):
            return 0.0
        return value
    return math.ldexp(rng.uniform(-1.0, 1.0), rng.randint(-1020, 1020))


def draw_report(rng: random.Random) -> CountReport:
    """One random report shape with adversarial floats in every slot."""
    has_bounds = rng.random() < 0.5
    return CountReport(
        estimate=draw_float(rng),
        method=rng.choice(["fpras", "acjr", "montecarlo", "bruteforce", "exact"]),
        length=rng.randint(0, 10_000),
        num_states=rng.randint(1, 10_000),
        elapsed_seconds=draw_float(rng, finite=True),
        backend=rng.choice([None, "bitset", "numpy", "reference"]),
        epsilon=draw_float(rng, finite=True) if has_bounds else None,
        delta=rng.uniform(1e-9, 1.0) if has_bounds else None,
        exact=rng.random() < 0.2,
        engine_counters={f"counter_{i}": rng.randint(0, 2**62) for i in range(rng.randint(0, 4))},
        details={
            "nested": {"floats": [draw_float(rng) for _ in range(3)]},
            "text": "adversarial",
            "none": None,
        },
        raw=rng.choice([None, rng.randint(0, 2**200)]),
    )


class TestCountReportRoundTrip:
    def test_adversarial_float_round_trips_bit_exactly(self):
        rng = random.Random(0xA0D17)
        for case in range(200):
            report = draw_report(rng)
            document = json.loads(json.dumps(report.to_dict()))
            rebuilt = CountReport.from_dict(document)
            # repr equality is bit-exactness for floats (covers -0.0, which
            # compares equal to 0.0 under ==).
            assert repr(rebuilt.estimate) == repr(report.estimate), case
            assert repr(rebuilt.elapsed_seconds) == repr(report.elapsed_seconds)
            assert repr(rebuilt.epsilon) == repr(report.epsilon)
            assert rebuilt == report, case

    def test_negative_zero_estimate_keeps_its_sign(self):
        report = draw_report(random.Random(1))
        report.estimate = -0.0
        rebuilt = CountReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert math.copysign(1.0, rebuilt.estimate) == -1.0

    def test_none_error_bounds_round_trip(self):
        report = draw_report(random.Random(2))
        report.epsilon = None
        report.delta = None
        report.exact = False
        assert report.error_bounds() is None
        document = report.to_dict()
        assert document["error_bounds"] is None
        assert CountReport.from_dict(document).error_bounds() is None

    def test_empty_counters_and_details_round_trip(self):
        report = draw_report(random.Random(3))
        report.engine_counters = {}
        report.details = {}
        rebuilt = CountReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert rebuilt.engine_counters == {}
        assert rebuilt.details == {}

    def test_audit_summary_is_json_representable(self):
        rng = random.Random(4)
        for _ in range(50):
            summary = draw_report(rng).audit_summary()
            assert json.loads(json.dumps(summary))["method"] == summary["method"]


# ----------------------------------------------------------------------
# Shared tiny manifest fixtures (one real run, reused by every test)
# ----------------------------------------------------------------------
TINY_SPEC = {
    "families": [{"family": "parity", "args": {}, "lengths": [6]}],
    "methods": ["fpras", "montecarlo"],
    "accuracy": [{"epsilon": 0.5, "delta": 0.25}],
    "seeds": [1, 2],
    "options": {"montecarlo": {"num_samples": 300}},
    "scale": {"sample_cap": 6, "union_trial_cap": 8},
}


@pytest.fixture(scope="module")
def tiny_manifest():
    """One real manifest over a 4-scenario matrix (seconds, not minutes)."""
    return run_matrix(TINY_SPEC, repeats=2)


class TestManifestSchema:
    def test_manifest_validates_and_json_round_trips(self, tiny_manifest):
        validate_manifest(tiny_manifest)
        rebuilt = json.loads(json.dumps(tiny_manifest))
        validate_manifest(rebuilt)
        assert rebuilt["summary"] == json.loads(json.dumps(tiny_manifest["summary"]))

    def test_records_carry_the_audit_trail(self, tiny_manifest):
        for record in tiny_manifest["scenarios"]:
            assert record["fingerprint"] is not None and len(record["fingerprint"]) == 64
            assert record["exact"] is not None  # parity n=6 has ground truth
            assert record["relative_error"] is not None and record["relative_error"] >= 0
            assert record["repeats"] == 2 == len(record["timings"])
            assert record["report"]["estimate"] == record["estimate"]
        env = tiny_manifest["environment"]
        assert env["python"] and "cpu_count" in env

    def test_fpras_records_carry_guarantee_montecarlo_does_not(self, tiny_manifest):
        by_method = {}
        for record in tiny_manifest["scenarios"]:
            by_method.setdefault(record["spec"]["method"], record)
        assert by_method["fpras"]["within_epsilon"] in (True, False)
        assert by_method["fpras"]["report"]["epsilon"] == 0.5
        assert by_method["montecarlo"]["within_epsilon"] is None
        assert by_method["montecarlo"]["report"]["epsilon"] is None

    def test_repeats_share_one_estimate(self):
        once = run_matrix(TINY_SPEC, repeats=1)
        twice = run_matrix(TINY_SPEC, repeats=3)
        for a, b in zip(once["scenarios"], twice["scenarios"]):
            assert a["id"] == b["id"]
            assert a["estimate"] == b["estimate"]  # seeded determinism

    @pytest.mark.parametrize(
        "mutate,match",
        [
            (lambda d: d.__setitem__("kind", "nope"), "kind"),
            (lambda d: d.__setitem__("schema", 99), "schema"),
            (lambda d: d.pop("environment"), "environment"),
            (lambda d: d.pop("summary"), "summary"),
            (lambda d: d["scenarios"][0].pop("fingerprint"), "missing field"),
            (lambda d: d["scenarios"][0].__setitem__("id", d["scenarios"][1]["id"]),
             "duplicate"),
            (lambda d: d["scenarios"][0].__setitem__("repeats", 5), "disagrees"),
            (lambda d: d["scenarios"][0].__setitem__("relative_error", -0.5),
             "relative_error"),
            (lambda d: d["summary"].__setitem__("scenario_count", 99), "scenario_count"),
        ],
    )
    def test_validation_rejects_malformed_documents(self, tiny_manifest, mutate, match):
        document = copy.deepcopy(tiny_manifest)
        mutate(document)
        with pytest.raises(AuditError, match=match):
            validate_manifest(document)

    def test_property_random_record_corruption_is_caught_or_harmless(self, tiny_manifest):
        """Dropping any required record field must raise, never pass silently."""
        for field in ("id", "group", "spec", "estimate", "timings", "report"):
            document = copy.deepcopy(tiny_manifest)
            document["scenarios"][0].pop(field)
            with pytest.raises(AuditError):
                validate_manifest(document)

    def test_write_is_append_only(self, tiny_manifest, tmp_path):
        path = write_manifest(tiny_manifest, str(tmp_path))
        assert path.endswith(manifest_filename(tiny_manifest))
        with pytest.raises(AuditError, match="append-only"):
            write_manifest(tiny_manifest, path)
        # Explicit overwrite remains possible, and load round-trips.
        write_manifest(tiny_manifest, path, overwrite=True)
        loaded = load_manifest(path)
        assert loaded["scenarios"] == json.loads(json.dumps(tiny_manifest["scenarios"]))

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(AuditError, match="cannot read"):
            load_manifest(str(path))


class TestScenarioMatrix:
    def test_default_matrix_size_is_the_factorial_product(self):
        scenarios = expand_matrix(DEFAULT_MATRIX)
        assert len(scenarios) == 3 * 2 * 1 * 1 * 1 * 5  # families x methods x seeds
        ids = [scenario.scenario_id for scenario in scenarios]
        assert len(set(ids)) == len(ids)

    def test_expansion_is_deterministic(self):
        first = [s.scenario_id for s in expand_matrix(DEFAULT_MATRIX)]
        second = [s.scenario_id for s in expand_matrix(DEFAULT_MATRIX)]
        assert first == second

    def test_group_id_is_seed_blind(self):
        scenarios = expand_matrix(TINY_SPEC)
        groups = {}
        for scenario in scenarios:
            groups.setdefault(scenario.group_id, []).append(scenario.seed)
        assert all(len(seeds) == 2 for seeds in groups.values())

    def test_describe_round_trips(self):
        for scenario in expand_matrix(TINY_SPEC):
            rebuilt = Scenario.from_describe(
                json.loads(json.dumps(scenario.describe()))
            )
            assert rebuilt.scenario_id == scenario.scenario_id
            assert rebuilt.describe() == scenario.describe()

    def test_fingerprint_is_stable_and_seed_sensitive(self):
        scenarios = expand_matrix(TINY_SPEC)
        fingerprints = {}
        for scenario in scenarios:
            nfa = scenario.build_nfa()
            from repro.automata.serialization import nfa_to_dict
            from repro.counting.api import request_fingerprint

            fingerprint = request_fingerprint(
                nfa_to_dict(nfa), scenario.length, scenario.fingerprint_request()
            )
            assert fingerprint is not None
            fingerprints[scenario.scenario_id] = fingerprint
        assert len(set(fingerprints.values())) == len(fingerprints)

    @pytest.mark.parametrize(
        "spec,match",
        [
            ({}, "families"),
            ({"families": []}, "families"),
            ({"families": ["parity"], "methods": []}, "methods"),
            ({"families": ["parity"], "accuracy": []}, "accuracy"),
            ({"families": ["parity"], "bogus_axis": [1]}, "unknown matrix spec"),
            ({"families": [{"args": {}}]}, "family"),
            ({"families": ["no_such_family"]}, "unknown family"),
            ({"families": ["parity"], "methods": ["no_such_method"]}, "unknown method"),
            ({"families": ["parity"], "backends": ["no_such_backend"]},
             "unknown backend"),
        ],
    )
    def test_bad_specs_fail_loudly(self, spec, match):
        with pytest.raises(AuditError, match=match):
            expand_matrix(spec)

    def test_duplicate_seeds_are_rejected(self):
        spec = dict(TINY_SPEC, seeds=[1, 1])
        with pytest.raises(AuditError, match="duplicate"):
            expand_matrix(spec)


class TestSessionManifestHooks:
    def test_observer_sees_every_count_and_detaches(self):
        from repro.automata.families import parity_nfa

        session = CountingSession(epsilon=0.5, seed=5)
        seen = []
        detach = session.add_observer(
            lambda nfa, length, request, report: seen.append(
                (length, request.method, report.estimate)
            )
        )
        report = session.count(parity_nfa(2), 5, method="exact")
        assert seen == [(5, "exact", report.estimate)]
        detach()
        session.count(parity_nfa(2), 5, method="exact")
        assert len(seen) == 1

    def test_manifest_builder_attaches_to_a_session(self):
        from repro.automata.families import parity_nfa

        scenario = Scenario(
            family="parity", length=5, method="exact", epsilon=0.5, delta=0.1, seed=0
        )
        builder = ManifestBuilder(matrix=None)
        session = CountingSession(epsilon=0.5, seed=0)
        builder.attach(
            session, lambda nfa, length, request, report: scenario
        )
        session.count(parity_nfa(2), 5, method="exact")
        manifest = builder.build()
        validate_manifest(manifest)
        assert len(manifest["scenarios"]) == 1
        assert manifest["scenarios"][0]["relative_error"] == 0.0


# ----------------------------------------------------------------------
# The gate itself gets tested
# ----------------------------------------------------------------------
def _perturb_speed(document, factor=1.6):
    record = document["scenarios"][0]
    record["timings"] = [t * factor for t in record["timings"]]
    record["elapsed_seconds"] *= factor
    return record["id"]


def _perturb_estimate_past_epsilon(document):
    for record in document["scenarios"]:
        if record["report"]["epsilon"] is None or record["exact"] in (None, 0):
            continue
        epsilon = record["spec"]["epsilon"]
        record["estimate"] = record["exact"] * (1.0 + epsilon) * 1.25
        record["relative_error"] = abs(record["estimate"] - record["exact"]) / record["exact"]
        record["within_epsilon"] = False
        record["report"]["estimate"] = record["estimate"]
        return record["id"]
    raise AssertionError("fixture manifest has no guaranteed record to perturb")


class TestAuditDiffGate:
    def test_identical_manifests_pass(self, tiny_manifest):
        diff = diff_manifests(tiny_manifest, copy.deepcopy(tiny_manifest))
        assert diff.ok
        assert "no regressions" in diff.format()

    def test_inflated_wall_time_is_flagged(self, tiny_manifest):
        slowed = copy.deepcopy(tiny_manifest)
        # Lift the baseline above the noise floor so the check is exercised
        # even though the fixture runs take milliseconds.
        baseline = copy.deepcopy(tiny_manifest)
        for record in baseline["scenarios"]:
            record["elapsed_seconds"] = max(record["elapsed_seconds"], 0.05)
        for record in slowed["scenarios"]:
            record["elapsed_seconds"] = max(record["elapsed_seconds"], 0.05)
        slow_id = _perturb_speed(slowed)
        diff = diff_manifests(baseline, slowed)
        assert not diff.ok
        assert any(r.kind == "speed" and r.subject == slow_id for r in diff.regressions)

    def test_small_slowdowns_below_threshold_pass(self, tiny_manifest):
        slowed = copy.deepcopy(tiny_manifest)
        for record in slowed["scenarios"]:
            record["elapsed_seconds"] *= 1.10  # inside the 25% budget
            record["timings"] = [t * 1.10 for t in record["timings"]]
        assert diff_manifests(tiny_manifest, slowed).ok

    def test_estimate_nudged_past_epsilon_is_flagged(self, tiny_manifest):
        drifted = copy.deepcopy(tiny_manifest)
        bad_id = _perturb_estimate_past_epsilon(drifted)
        diff = diff_manifests(tiny_manifest, drifted)
        assert not diff.ok
        assert any(
            r.kind == "accuracy" and r.subject == bad_id for r in diff.regressions
        )

    def test_montecarlo_error_does_not_hard_fail(self, tiny_manifest):
        drifted = copy.deepcopy(tiny_manifest)
        for record in drifted["scenarios"]:
            if record["spec"]["method"] == "montecarlo":
                record["estimate"] = record["exact"] * 3.0
                record["relative_error"] = 2.0
        diff = diff_manifests(tiny_manifest, drifted)
        assert all(r.kind != "accuracy" for r in diff.regressions)

    def test_missing_scenario_is_a_coverage_regression(self, tiny_manifest):
        shrunk = copy.deepcopy(tiny_manifest)
        dropped = shrunk["scenarios"].pop()
        shrunk["summary"]["scenario_count"] -= 1
        diff = diff_manifests(tiny_manifest, shrunk)
        assert any(
            r.kind == "coverage" and r.subject == dropped["id"]
            for r in diff.regressions
        )

    def test_added_scenarios_are_notes_not_regressions(self, tiny_manifest):
        grown = copy.deepcopy(tiny_manifest)
        baseline = copy.deepcopy(tiny_manifest)
        dropped = baseline["scenarios"].pop()
        baseline["summary"]["scenario_count"] -= 1
        diff = diff_manifests(baseline, grown)
        assert diff.ok
        assert any(dropped["id"] in note for note in diff.notes)

    def test_delta_coverage_shortfall_is_flagged(self, tiny_manifest):
        drifted = copy.deepcopy(tiny_manifest)
        # Push every fpras seed outside the guarantee: failure fraction 1.0.
        for record in drifted["scenarios"]:
            if record["report"]["epsilon"] is not None:
                record["within_epsilon"] = False
        from repro.audit.manifest import summarise_records

        drifted["summary"] = summarise_records(drifted["scenarios"])
        diff = diff_manifests(tiny_manifest, drifted)
        assert any(r.kind == "delta-coverage" for r in diff.regressions)

    def test_epsilon_utilisation_creep_is_flagged(self, tiny_manifest):
        baseline = copy.deepcopy(tiny_manifest)
        drifted = copy.deepcopy(tiny_manifest)
        for name, group in baseline["summary"]["groups"].items():
            if group["method"] == "fpras":
                group["epsilon_utilisation"] = 0.5
        for name, group in drifted["summary"]["groups"].items():
            if group["method"] == "fpras":
                group["epsilon_utilisation"] = 0.95  # toward the cliff edge
        diff = diff_manifests(baseline, drifted)
        assert any(r.kind == "accuracy-drift" for r in diff.regressions)

    def test_thresholds_are_honoured(self, tiny_manifest):
        slowed = copy.deepcopy(tiny_manifest)
        for record in slowed["scenarios"]:
            record["elapsed_seconds"] = max(record["elapsed_seconds"], 0.05) * 1.4
            record["timings"] = [record["elapsed_seconds"]]
            record["repeats"] = 1
        baseline = copy.deepcopy(tiny_manifest)
        for record in baseline["scenarios"]:
            record["elapsed_seconds"] = max(record["elapsed_seconds"], 0.05)
        assert not diff_manifests(baseline, slowed).ok
        lenient = DiffThresholds(speed_regression=0.60)
        assert diff_manifests(baseline, slowed, lenient).ok


class TestAuditCLI:
    def test_audit_writes_a_valid_manifest(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(TINY_SPEC))
        out_path = tmp_path / "manifest.json"
        exit_code = cli_main(
            ["audit", "--matrix", str(spec_path), "--output", str(out_path)]
        )
        assert exit_code == 0
        manifest = load_manifest(str(out_path))
        assert manifest["summary"]["scenario_count"] == 4
        assert "per-group accuracy summary" in capsys.readouterr().out

    def test_audit_refuses_to_overwrite_without_force(self, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(TINY_SPEC))
        out_path = tmp_path / "manifest.json"
        assert cli_main(["audit", "--matrix", str(spec_path),
                         "--output", str(out_path)]) == 0
        assert cli_main(["audit", "--matrix", str(spec_path),
                         "--output", str(out_path)]) == 2  # ReproError exit
        assert cli_main(["audit", "--matrix", str(spec_path),
                         "--output", str(out_path), "--force"]) == 0

    def test_audit_diff_exit_codes(self, tiny_manifest, tmp_path, capsys):
        old_path = tmp_path / "old.json"
        new_path = tmp_path / "new.json"
        write_manifest(tiny_manifest, str(old_path))
        drifted = copy.deepcopy(tiny_manifest)
        _perturb_estimate_past_epsilon(drifted)
        write_manifest(drifted, str(new_path))
        assert cli_main(["audit-diff", str(old_path), str(old_path)]) == 0
        assert cli_main(["audit-diff", str(old_path), str(new_path)]) == 1
        assert "[accuracy]" in capsys.readouterr().out

    def test_audit_diff_rejects_non_manifests(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": 1}))
        assert cli_main(["audit-diff", str(bogus), str(bogus)]) == 2
