"""Unit tests for DFAs, determinisation and minimisation."""

from __future__ import annotations

import pytest

from repro.automata import families
from repro.automata.dfa import DFA, determinize, equivalent, minimize
from repro.automata.exact import count_exact
from repro.automata.nfa import NFA
from repro.errors import AutomatonError


@pytest.fixture
def even_zeros_dfa() -> DFA:
    """Words with an even number of zeros."""
    return DFA(
        states=frozenset({"even", "odd"}),
        initial="even",
        transitions={
            ("even", "0"): "odd",
            ("odd", "0"): "even",
            ("even", "1"): "even",
            ("odd", "1"): "odd",
        },
        accepting=frozenset({"even"}),
        alphabet=("0", "1"),
    )


class TestDFABasics:
    def test_accepts(self, even_zeros_dfa):
        assert even_zeros_dfa.accepts("00")
        assert even_zeros_dfa.accepts("1100")
        assert not even_zeros_dfa.accepts("0")

    def test_accepts_empty_word(self, even_zeros_dfa):
        assert even_zeros_dfa.accepts("")

    def test_partial_dfa_rejects_on_missing_transition(self):
        dfa = DFA(
            states=frozenset({"a", "b"}),
            initial="a",
            transitions={("a", "0"): "b"},
            accepting=frozenset({"b"}),
            alphabet=("0", "1"),
        )
        assert dfa.accepts("0")
        assert not dfa.accepts("1")
        assert not dfa.accepts("00")

    def test_invalid_initial_rejected(self):
        with pytest.raises(AutomatonError):
            DFA(
                states=frozenset({"a"}),
                initial="zzz",
                transitions={},
                accepting=frozenset(),
                alphabet=("0",),
            )

    def test_invalid_transition_symbol_rejected(self):
        with pytest.raises(AutomatonError):
            DFA(
                states=frozenset({"a"}),
                initial="a",
                transitions={("a", "x"): "a"},
                accepting=frozenset(),
                alphabet=("0",),
            )

    def test_completed_adds_dead_state(self):
        dfa = DFA(
            states=frozenset({"a"}),
            initial="a",
            transitions={("a", "0"): "a"},
            accepting=frozenset({"a"}),
            alphabet=("0", "1"),
        )
        complete = dfa.completed()
        assert complete.num_states == 2
        assert all(
            (state, symbol) in complete.transitions
            for state in complete.states
            for symbol in complete.alphabet
        )

    def test_completed_noop_when_already_complete(self, even_zeros_dfa):
        assert even_zeros_dfa.completed() is even_zeros_dfa

    def test_complement_swaps_acceptance(self, even_zeros_dfa):
        complement = even_zeros_dfa.complement()
        for word in ("", "0", "00", "101", "0110"):
            assert complement.accepts(word) != even_zeros_dfa.accepts(word)

    def test_to_nfa_preserves_language(self, even_zeros_dfa):
        nfa = even_zeros_dfa.to_nfa()
        for word in ("", "0", "00", "0101", "111"):
            assert nfa.accepts(word) == even_zeros_dfa.accepts(word)


class TestCounting:
    def test_count_slice_even_zeros(self, even_zeros_dfa):
        # Words of length 4 with an even number of zeros: C(4,0)+C(4,2)+C(4,4) = 8.
        assert even_zeros_dfa.count_slice(4) == 8

    def test_count_slice_zero_length(self, even_zeros_dfa):
        assert even_zeros_dfa.count_slice(0) == 1

    def test_count_slice_negative_rejected(self, even_zeros_dfa):
        with pytest.raises(ValueError):
            even_zeros_dfa.count_slice(-1)

    def test_count_slice_matches_enumeration(self, even_zeros_dfa):
        nfa = even_zeros_dfa.to_nfa()
        for length in range(7):
            assert even_zeros_dfa.count_slice(length) == len(nfa.language_slice(length))

    def test_transfer_matrix_row_sums(self, even_zeros_dfa):
        matrix, index = even_zeros_dfa.transfer_matrix()
        assert matrix.shape == (2, 2)
        # Each state has exactly one successor per symbol: row sums equal |alphabet|.
        assert matrix.sum(axis=1).tolist() == [2.0, 2.0]
        assert set(index) == set(even_zeros_dfa.states)


class TestDeterminize:
    @pytest.mark.parametrize(
        "nfa_builder, lengths",
        [
            (lambda: families.substring_nfa("101"), range(7)),
            (lambda: families.suffix_nfa("011"), range(7)),
            (lambda: families.union_of_patterns_nfa(["00", "11"]), range(6)),
            (lambda: families.no_consecutive_ones_nfa(), range(8)),
        ],
    )
    def test_determinize_preserves_slice_counts(self, nfa_builder, lengths):
        nfa = nfa_builder()
        dfa = determinize(nfa)
        for length in lengths:
            assert dfa.count_slice(length) == count_exact(nfa, length)

    def test_determinize_preserves_acceptance(self, substring_101_nfa):
        dfa = determinize(substring_101_nfa)
        for word in ("101", "000101", "010011", "111", "0"):
            assert dfa.accepts(word) == substring_101_nfa.accepts(word)

    def test_determinize_blowup_for_kth_symbol_from_end(self):
        # "the 4th symbol from the end is 1": the canonical exponential
        # determinisation example — the DFA must remember the last 4 symbols.
        from repro.automata.regex import compile_regex

        nfa = compile_regex("(0|1)*1(0|1){3}")
        dfa = determinize(nfa)
        assert dfa.num_states >= 2**4
        assert dfa.num_states > nfa.num_states

    def test_determinize_is_deterministic(self, suffix_nfa_0110):
        dfa = determinize(suffix_nfa_0110)
        seen = set()
        for (state, symbol) in dfa.transitions:
            assert (state, symbol) not in seen
            seen.add((state, symbol))


class TestMinimize:
    def test_minimize_reduces_redundant_states(self):
        # Two interchangeable accepting states collapse to one.
        nfa = NFA.build(
            [
                ("a", "0", "b"),
                ("a", "1", "c"),
                ("b", "0", "b"),
                ("b", "1", "b"),
                ("c", "0", "c"),
                ("c", "1", "c"),
            ],
            initial="a",
            accepting=["b", "c"],
        )
        minimal = minimize(determinize(nfa))
        # Minimal DFA: initial + sink-accept + (possibly) dead state.
        assert minimal.num_states <= 3

    def test_minimize_preserves_language(self, suffix_nfa_0110):
        dfa = determinize(suffix_nfa_0110)
        minimal = minimize(dfa)
        assert equivalent(dfa, minimal, max_length=9)

    def test_minimize_does_not_grow(self, substring_101_nfa):
        dfa = determinize(substring_101_nfa)
        assert minimize(dfa).num_states <= dfa.completed().num_states

    def test_equivalent_detects_difference(self):
        first = determinize(families.substring_nfa("101"))
        second = determinize(families.substring_nfa("111"))
        assert not equivalent(first, second, max_length=6)
