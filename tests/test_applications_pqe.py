"""Tests for probabilistic query evaluation (PQE) via the #NFA reduction."""

from __future__ import annotations

import pytest

from repro.applications.pqe import (
    PathQuery,
    PQEReduction,
    ProbabilisticDatabase,
    evaluate_path_query,
    exact_probability,
    montecarlo_probability,
)
from repro.errors import ReductionError


@pytest.fixture
def simple_db() -> ProbabilisticDatabase:
    database = ProbabilisticDatabase()
    database.add_fact("R", "a", "b", 0.5)
    database.add_fact("R", "a", "c", 0.75)
    database.add_fact("S", "b", "z", 0.5)
    database.add_fact("S", "c", "z", 0.25)
    return database


@pytest.fixture
def two_hop_query() -> PathQuery:
    return PathQuery(("R", "S"))


class TestModel:
    def test_add_fact_validates_probability(self):
        database = ProbabilisticDatabase()
        with pytest.raises(ReductionError):
            database.add_fact("R", "a", "b", 1.5)

    def test_num_facts_and_domain(self, simple_db):
        assert simple_db.num_facts == 4
        assert simple_db.domain() == frozenset({"a", "b", "c", "z"})

    def test_query_requires_atoms(self):
        with pytest.raises(ReductionError):
            PathQuery(())

    def test_query_must_be_self_join_free(self):
        with pytest.raises(ReductionError):
            PathQuery(("R", "R"))

    def test_query_length(self, two_hop_query):
        assert two_hop_query.length == 2


class TestReferenceEvaluators:
    def test_exact_probability_single_fact(self):
        database = ProbabilisticDatabase()
        database.add_fact("R", "a", "b", 0.3)
        assert exact_probability(database, PathQuery(("R",))) == pytest.approx(0.3)

    def test_exact_probability_independent_or(self):
        # Two independent witnesses: P = 1 - (1-p)(1-q).
        database = ProbabilisticDatabase()
        database.add_fact("R", "a", "b", 0.5)
        database.add_fact("R", "c", "d", 0.25)
        assert exact_probability(database, PathQuery(("R",))) == pytest.approx(
            1 - 0.5 * 0.75
        )

    def test_exact_probability_two_hops(self, simple_db, two_hop_query):
        # P[some R(a,x) and S(x,z) both present] by direct computation:
        # path via b present w.p. 0.25, via c w.p. 0.1875; independent fact
        # sets but joint inclusion-exclusion handled by enumeration.
        value = exact_probability(simple_db, two_hop_query)
        expected = 1 - (1 - 0.5 * 0.5) * (1 - 0.75 * 0.25)
        assert value == pytest.approx(expected)

    def test_exact_probability_refuses_large_instances(self):
        database = ProbabilisticDatabase()
        for index in range(30):
            database.add_fact("R", f"a{index}", f"b{index}", 0.5)
        with pytest.raises(ReductionError):
            exact_probability(database, PathQuery(("R",)))

    def test_montecarlo_close_to_exact(self, simple_db, two_hop_query):
        exact = exact_probability(simple_db, two_hop_query)
        estimate = montecarlo_probability(simple_db, two_hop_query, num_samples=20000, seed=1)
        assert abs(estimate - exact) < 0.02

    def test_unsatisfiable_query_probability_zero(self, simple_db):
        query = PathQuery(("S", "R"))  # S ends at z, no R facts start at z
        assert exact_probability(simple_db, query) == 0.0


class TestReduction:
    def test_requires_relevant_facts(self):
        database = ProbabilisticDatabase()
        database.add_fact("R", "a", "b", 0.5)
        with pytest.raises(ReductionError):
            PQEReduction(database, PathQuery(("T",)))

    def test_bits_must_be_positive(self, simple_db, two_hop_query):
        with pytest.raises(ReductionError):
            PQEReduction(simple_db, two_hop_query, bits=0)

    def test_threshold_rounding(self, simple_db, two_hop_query):
        reduction = PQEReduction(simple_db, two_hop_query, bits=2)
        assert reduction.threshold(0.5) == 2
        assert reduction.threshold(0.75) == 3
        assert reduction.rounded_probability(0.6) == pytest.approx(0.5)

    def test_word_length(self, simple_db, two_hop_query):
        reduction = PQEReduction(simple_db, two_hop_query, bits=3)
        assert reduction.word_length == 12

    def test_exact_rounded_probability_matches_enumeration(self, simple_db, two_hop_query):
        # All probabilities in simple_db are exactly representable with 2 bits,
        # so the coin-word count must equal the true probability.
        reduction = PQEReduction(simple_db, two_hop_query, bits=2)
        assert reduction.exact_rounded_probability() == pytest.approx(
            exact_probability(simple_db, two_hop_query)
        )

    def test_single_atom_reduction(self):
        database = ProbabilisticDatabase()
        database.add_fact("R", "a", "b", 0.5)
        database.add_fact("R", "c", "d", 0.5)
        reduction = PQEReduction(database, PathQuery(("R",)), bits=1)
        assert reduction.exact_rounded_probability() == pytest.approx(0.75)

    def test_probability_one_and_zero_facts(self):
        database = ProbabilisticDatabase()
        database.add_fact("R", "a", "b", 1.0)
        database.add_fact("S", "b", "c", 0.0)
        reduction = PQEReduction(database, PathQuery(("R", "S")), bits=1)
        assert reduction.exact_rounded_probability() == pytest.approx(0.0)

    def test_reduction_size_report(self, simple_db, two_hop_query):
        reduction = PQEReduction(simple_db, two_hop_query, bits=2)
        sizes = reduction.reduction_size()
        assert sizes["facts"] == 4
        assert sizes["word_length"] == 8
        assert sizes["nfa_states"] > 0


class TestEndToEnd:
    def test_fpras_close_to_exact(self, simple_db, two_hop_query):
        exact = exact_probability(simple_db, two_hop_query)
        result = evaluate_path_query(
            simple_db, two_hop_query, method="fpras", epsilon=0.3, bits=2, seed=17
        )
        assert result.method == "fpras"
        assert abs(result.probability - exact) / exact < 0.35
        assert result.nfa_states > 0
        assert result.word_length == 8

    def test_exact_method(self, simple_db, two_hop_query):
        result = evaluate_path_query(simple_db, two_hop_query, method="exact")
        assert result.probability == pytest.approx(exact_probability(simple_db, two_hop_query))

    def test_exact_nfa_method(self, simple_db, two_hop_query):
        result = evaluate_path_query(simple_db, two_hop_query, method="exact-nfa", bits=2)
        assert result.probability == pytest.approx(exact_probability(simple_db, two_hop_query))

    def test_montecarlo_method(self, simple_db, two_hop_query):
        result = evaluate_path_query(
            simple_db, two_hop_query, method="montecarlo", num_samples=5000, seed=3
        )
        assert 0.0 <= result.probability <= 1.0

    def test_unknown_method_rejected(self, simple_db, two_hop_query):
        with pytest.raises(ReductionError):
            evaluate_path_query(simple_db, two_hop_query, method="bogus")

    def test_result_absolute_error_helper(self, simple_db, two_hop_query):
        result = evaluate_path_query(simple_db, two_hop_query, method="exact")
        assert result.absolute_error(result.probability) == 0.0
