"""Tests for Algorithm 3 — the main FPRAS (NFACounter / count_nfa)."""

from __future__ import annotations

import pytest

from repro.automata import families
from repro.automata.exact import count_exact, count_per_state_exact
from repro.automata.nfa import NFA
from repro.counting.fpras import CountResult, FPRASParameters, NFACounter, count_nfa
from repro.counting.params import ParameterScale
from repro.errors import ParameterError


class TestBasicBehaviour:
    def test_negative_length_rejected(self, substring_101_nfa, fast_parameters):
        with pytest.raises(ParameterError):
            NFACounter(substring_101_nfa, -1, fast_parameters)

    def test_length_zero_accepting_initial(self, fast_parameters):
        nfa = NFA.build([("a", "0", "a")], initial="a", accepting=["a"])
        result = NFACounter(nfa, 0, fast_parameters).run()
        assert result.estimate == pytest.approx(1.0)

    def test_length_zero_non_accepting_initial(self, substring_101_nfa, fast_parameters):
        result = NFACounter(substring_101_nfa, 0, fast_parameters).run()
        assert result.estimate == 0.0

    def test_empty_slice_gives_zero(self, fast_parameters):
        # "exactly one 0 then stop" has no word of length 3.
        nfa = NFA.build([("a", "0", "b")], initial="a", accepting=["b"])
        result = NFACounter(nfa, 3, fast_parameters).run()
        assert result.estimate == 0.0

    def test_single_word_language(self, fast_parameters):
        nfa = NFA.build(
            [("a", "0", "b"), ("b", "1", "c"), ("c", "0", "d")],
            initial="a",
            accepting=["d"],
        )
        result = NFACounter(nfa, 3, fast_parameters).run()
        assert result.estimate == pytest.approx(1.0, rel=0.01)

    def test_all_words_language(self, fast_parameters):
        result = NFACounter(families.all_words_nfa(), 8, fast_parameters).run()
        assert result.estimate == pytest.approx(256.0, rel=0.2)

    def test_has_run_flag(self, substring_101_nfa, fast_parameters):
        counter = NFACounter(substring_101_nfa, 4, fast_parameters)
        assert not counter.has_run
        counter.run()
        assert counter.has_run

    def test_deterministic_given_seed(self, substring_101_nfa):
        def run_once():
            params = FPRASParameters(epsilon=0.4, delta=0.1, seed=123)
            return NFACounter(substring_101_nfa, 8, params).run().estimate

        assert run_once() == run_once()

    def test_different_seeds_generally_differ(self, suffix_nfa_0110):
        first = count_nfa(suffix_nfa_0110, 8, epsilon=0.4, seed=1).estimate
        second = count_nfa(suffix_nfa_0110, 8, epsilon=0.4, seed=2).estimate
        # Not a hard guarantee, but with randomised estimates an exact tie
        # across different seeds would indicate the seed is being ignored.
        assert first != second or first == pytest.approx(count_exact(suffix_nfa_0110, 8))


class TestAccuracy:
    @pytest.mark.parametrize(
        "builder, length",
        [
            (lambda: families.substring_nfa("101"), 10),
            (lambda: families.suffix_nfa("0110"), 10),
            (lambda: families.no_consecutive_ones_nfa(), 10),
            (lambda: families.parity_nfa(3), 9),
            (lambda: families.union_of_patterns_nfa(["00", "11"]), 8),
            (lambda: families.divisibility_nfa(5), 9),
            (lambda: families.ladder_nfa(4), 8),
        ],
    )
    def test_relative_error_reasonable(self, builder, length, accurate_parameters):
        nfa = builder()
        exact = count_exact(nfa, length)
        result = NFACounter(nfa, length, accurate_parameters).run()
        assert result.relative_error(exact) < 0.35

    def test_mean_over_seeds_is_close(self, substring_101_nfa):
        exact = count_exact(substring_101_nfa, 9)
        estimates = [
            count_nfa(substring_101_nfa, 9, epsilon=0.3, seed=seed).estimate
            for seed in range(5)
        ]
        mean = sum(estimates) / len(estimates)
        assert abs(mean - exact) / exact < 0.2

    def test_dense_language_is_easy(self, accurate_parameters):
        nfa = families.all_words_nfa()
        exact = count_exact(nfa, 12)
        result = NFACounter(nfa, 12, accurate_parameters).run()
        assert result.relative_error(exact) < 0.15

    def test_blocks_family_with_empty_intermediate_levels(self, accurate_parameters):
        nfa = families.blocks_nfa(3)
        exact = count_exact(nfa, 9)
        result = NFACounter(nfa, 9, accurate_parameters).run()
        assert exact > 0
        assert result.relative_error(exact) < 0.4

    def test_state_estimates_track_exact_per_state_counts(self, accurate_parameters):
        nfa = families.no_consecutive_ones_nfa()
        length = 8
        exact_table = count_per_state_exact(nfa, length)
        result = NFACounter(nfa, length, accurate_parameters).run()
        for (state, level), estimate in result.state_estimates.items():
            exact_value = exact_table[(state, level)]
            if exact_value == 0:
                continue
            assert abs(estimate - exact_value) / exact_value < 0.5


class TestMultipleAcceptingStates:
    def test_union_of_accepting_languages(self, accurate_parameters):
        # Accepting states with overlapping languages must not be double counted.
        nfa = families.union_of_patterns_nfa(["01", "10"])
        exact = count_exact(nfa, 8)
        result = NFACounter(nfa, 8, accurate_parameters).run()
        assert result.relative_error(exact) < 0.35

    def test_equivalent_to_normalized_single_accepting(self, accurate_parameters):
        nfa = families.union_of_patterns_nfa(["00", "11"])
        normalized = nfa.normalized_single_accepting()
        exact = count_exact(nfa, 8)
        multi = NFACounter(nfa, 8, accurate_parameters).run()
        single = NFACounter(normalized, 8, accurate_parameters).run()
        assert multi.relative_error(exact) < 0.35
        assert single.relative_error(exact) < 0.35


class TestCountResult:
    def test_relative_error_and_guarantee(self):
        result = CountResult(
            estimate=110.0,
            length=5,
            num_states=3,
            epsilon=0.2,
            delta=0.1,
            ns=10,
            xns=20,
            elapsed_seconds=0.0,
            union_calls=0,
            membership_calls=0,
            sample_draws=0,
            sample_successes=0,
            padded_states=0,
        )
        assert result.relative_error(100) == pytest.approx(0.1)
        assert result.within_guarantee(100)
        assert not result.within_guarantee(50)

    def test_relative_error_zero_exact(self):
        result = CountResult(
            estimate=0.0,
            length=5,
            num_states=3,
            epsilon=0.2,
            delta=0.1,
            ns=10,
            xns=20,
            elapsed_seconds=0.0,
            union_calls=0,
            membership_calls=0,
            sample_draws=0,
            sample_successes=0,
            padded_states=0,
        )
        assert result.relative_error(0) == 0.0
        assert result.within_guarantee(0)

    def test_diagnostics_populated(self, substring_101_nfa, fast_parameters):
        result = NFACounter(substring_101_nfa, 6, fast_parameters).run()
        assert result.ns == fast_parameters.ns(6, substring_101_nfa.num_states)
        assert result.union_calls > 0
        assert result.membership_calls >= 0
        assert result.sample_draws >= result.sample_successes
        assert result.elapsed_seconds > 0
        assert (substring_101_nfa.initial, 0) in result.state_estimates

    def test_sample_counts_bounded_by_ns(self, substring_101_nfa, fast_parameters):
        result = NFACounter(substring_101_nfa, 6, fast_parameters).run()
        for count in result.sample_counts.values():
            assert count <= result.ns


class TestStoredSamples:
    def test_samples_are_words_of_the_state_language(self, fast_parameters):
        nfa = families.no_consecutive_ones_nfa()
        counter = NFACounter(nfa, 6, fast_parameters)
        counter.run()
        for (state, level), words in counter.samples.items():
            assert len(words) >= 1
            for word in words:
                assert len(word) == level
                assert state in nfa.reachable_states(word)

    def test_sample_multisets_padded_to_ns(self, substring_101_nfa, fast_parameters):
        counter = NFACounter(substring_101_nfa, 6, fast_parameters)
        result = counter.run()
        ns = result.ns
        for (state, level), words in counter.samples.items():
            if level == 0:
                continue
            assert len(words) == ns

    def test_state_accessors(self, substring_101_nfa, fast_parameters):
        counter = NFACounter(substring_101_nfa, 5, fast_parameters)
        counter.run()
        assert counter.state_estimate("wait", 5) > 0
        assert counter.state_estimate("nonexistent", 5) == 0.0
        assert len(counter.state_samples("wait", 5)) > 0
        assert counter.state_samples("nonexistent", 5) == ()


class TestScaleModes:
    def test_faithful_scaled_mode_runs(self, fibonacci_nfa):
        params = FPRASParameters(
            epsilon=0.5,
            delta=0.2,
            scale=ParameterScale.faithful_scaled(sample_cap=8, union_trial_cap=16),
            seed=3,
        )
        exact = count_exact(fibonacci_nfa, 6)
        result = NFACounter(fibonacci_nfa, 6, params).run()
        assert result.relative_error(exact) < 0.6

    def test_perturbation_mode_runs(self, fibonacci_nfa):
        params = FPRASParameters(
            epsilon=0.5,
            delta=0.2,
            scale=ParameterScale.practical(sample_cap=8, union_trial_cap=12).with_overrides(
                faithful_perturbation=True
            ),
            seed=3,
        )
        result = NFACounter(fibonacci_nfa, 5, params).run()
        assert result.estimate >= 0.0

    def test_paper_mode_parameters_are_not_capped(self):
        # Paper-exact parameters are far too large to execute even on toy
        # inputs (that is the point of the paper-vs-operational split), so we
        # only check that paper mode bypasses every cap.
        params = FPRASParameters(epsilon=0.9, delta=0.4, scale=ParameterScale.paper())
        assert params.ns(1, 2) == params.ns_paper(1, 2) > 10_000
        assert params.xns(1, 2) == params.xns_paper(1, 2) > params.ns(1, 2)

    def test_strict_consumption_mode_runs(self, fibonacci_nfa):
        # Paper-style destructive sample consumption on a scaled instance.
        params = FPRASParameters(
            epsilon=0.6,
            delta=0.3,
            scale=ParameterScale.practical(sample_cap=12, union_trial_cap=16).with_overrides(
                strict_sample_consumption=True
            ),
            seed=9,
        )
        exact = count_exact(fibonacci_nfa, 5)
        result = NFACounter(fibonacci_nfa, 5, params).run()
        assert result.estimate > 0
        assert result.relative_error(exact) < 1.0

    def test_convenience_wrapper_defaults(self, substring_101_nfa):
        result = count_nfa(substring_101_nfa, 7, epsilon=0.4, delta=0.2, seed=5)
        assert isinstance(result, CountResult)
        assert result.epsilon == 0.4
