"""Tests for the analysis utilities (statistics, accuracy, complexity model)."""

from __future__ import annotations

import math

import pytest

from repro.analysis.accuracy import AccuracyReport, compare_estimators, evaluate_accuracy
from repro.analysis.complexity import (
    compare_time_bounds,
    complexity_point,
    growth_exponent,
    samples_per_state_table,
    speedup_ratio,
)
from repro.analysis.statistics import (
    EmpiricalDistribution,
    chernoff_sample_size,
    empirical_tv_to_uniform,
    hoeffding_bound,
    mean_confidence_interval,
    quantile,
    total_variation_distance,
    uniformity_report,
)
from repro.automata import families
from repro.automata.exact import count_exact


class TestEmpiricalDistribution:
    def test_from_samples(self):
        dist = EmpiricalDistribution.from_samples(["a", "b", "a", "a"])
        assert dist.total == 4
        assert dist.probability("a") == pytest.approx(0.75)
        assert dist.probability("missing") == 0.0

    def test_support_and_probabilities(self):
        dist = EmpiricalDistribution.from_samples(["x", "y"])
        assert set(dist.support()) == {"x", "y"}
        assert sum(dist.as_probabilities().values()) == pytest.approx(1.0)

    def test_empty_distribution(self):
        dist = EmpiricalDistribution.from_samples([])
        assert dist.total == 0
        assert dist.as_probabilities() == {}
        assert dist.probability("a") == 0.0


class TestTotalVariation:
    def test_identical_distributions(self):
        p = {"a": 0.5, "b": 0.5}
        assert total_variation_distance(p, p) == 0.0

    def test_disjoint_distributions(self):
        assert total_variation_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_symmetry(self):
        p = {"a": 0.7, "b": 0.3}
        q = {"a": 0.2, "b": 0.5, "c": 0.3}
        assert total_variation_distance(p, q) == pytest.approx(total_variation_distance(q, p))

    def test_known_value(self):
        p = {"a": 0.5, "b": 0.5}
        q = {"a": 0.75, "b": 0.25}
        assert total_variation_distance(p, q) == pytest.approx(0.25)

    def test_empirical_tv_to_uniform_perfect(self):
        samples = ["a", "b", "c", "a", "b", "c"]
        assert empirical_tv_to_uniform(samples, ["a", "b", "c"]) == pytest.approx(0.0)

    def test_empirical_tv_to_uniform_degenerate(self):
        assert empirical_tv_to_uniform(["a"] * 10, ["a", "b"]) == pytest.approx(0.5)

    def test_empirical_tv_empty_population(self):
        assert empirical_tv_to_uniform([], []) == 0.0
        assert empirical_tv_to_uniform(["a"], []) == 1.0


class TestUniformityReport:
    def test_perfectly_uniform_samples(self):
        population = ["a", "b", "c", "d"]
        samples = population * 50
        report = uniformity_report(samples, population)
        assert report.tv_distance == pytest.approx(0.0)
        assert report.excess_tv == 0.0
        assert report.distinct_sampled == 4
        assert report.max_probability_ratio == pytest.approx(1.0)

    def test_skewed_samples_have_excess(self):
        population = ["a", "b", "c", "d"]
        samples = ["a"] * 400
        report = uniformity_report(samples, population)
        assert report.tv_distance == pytest.approx(0.75)
        assert report.excess_tv > 0.5
        assert report.max_probability_ratio == pytest.approx(4.0)

    def test_expected_tv_decreases_with_sample_size(self):
        population = list(range(50))
        small = uniformity_report(list(range(50)), population)
        large = uniformity_report(list(range(50)) * 20, population)
        assert large.expected_tv_distance < small.expected_tv_distance


class TestConcentrationHelpers:
    def test_chernoff_sample_size_monotone(self):
        assert chernoff_sample_size(0.1, 0.1) > chernoff_sample_size(0.2, 0.1)
        assert chernoff_sample_size(0.1, 0.01) > chernoff_sample_size(0.1, 0.1)

    def test_chernoff_invalid_arguments(self):
        with pytest.raises(ValueError):
            chernoff_sample_size(0.0, 0.1)
        with pytest.raises(ValueError):
            chernoff_sample_size(0.1, 1.5)

    def test_hoeffding_bound_range(self):
        assert hoeffding_bound(100, 0.1) == pytest.approx(2 * math.exp(-2.0), rel=1e-6)
        assert hoeffding_bound(10, 0.0) == 1.0

    def test_hoeffding_invalid(self):
        with pytest.raises(ValueError):
            hoeffding_bound(0, 0.1)

    def test_mean_confidence_interval_contains_mean(self):
        mean, low, high = mean_confidence_interval([1.0, 2.0, 3.0, 4.0], confidence=0.95)
        assert low <= mean <= high
        assert mean == pytest.approx(2.5)

    def test_mean_confidence_interval_single_value(self):
        mean, low, high = mean_confidence_interval([3.0])
        assert mean == low == high == 3.0

    def test_mean_confidence_interval_invalid(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])
        with pytest.raises(ValueError):
            mean_confidence_interval([1.0], confidence=1.5)

    def test_quantile(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert quantile(values, 0.0) == 1.0
        assert quantile(values, 1.0) == 5.0
        assert quantile(values, 0.5) == 3.0
        assert quantile(values, 0.25) == pytest.approx(2.0)

    def test_quantile_invalid(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


class TestAccuracyReports:
    def test_evaluate_accuracy_with_exact_estimator(self):
        nfa = families.no_consecutive_ones_nfa()

        def exact_estimator(automaton, length, _seed):
            return float(count_exact(automaton, length))

        report = evaluate_accuracy("exact", nfa, 8, exact_estimator, epsilon=0.2, trials=3)
        assert report.mean_relative_error == 0.0
        assert report.within_guarantee_fraction == 1.0
        assert report.trials == 3

    def test_evaluate_accuracy_with_biased_estimator(self):
        nfa = families.no_consecutive_ones_nfa()
        exact = count_exact(nfa, 8)

        def biased(automaton, length, _seed):
            return 2.0 * count_exact(automaton, length)

        report = evaluate_accuracy("biased", nfa, 8, biased, epsilon=0.2, trials=4, exact=exact)
        assert report.mean_relative_error == pytest.approx(1.0)
        assert report.within_guarantee_fraction == 0.0
        assert report.max_relative_error == pytest.approx(1.0)
        assert report.median_relative_error == pytest.approx(1.0)

    def test_report_summary_keys(self):
        report = AccuracyReport(name="x", length=5, exact=10, epsilon=0.3, estimates=[9.0, 11.0])
        summary = report.summary()
        assert set(summary) >= {
            "name",
            "length",
            "exact",
            "epsilon",
            "trials",
            "mean_rel_error",
            "within_guarantee",
        }

    def test_zero_exact_handling(self):
        report = AccuracyReport(name="x", length=3, exact=0, epsilon=0.3, estimates=[0.0, 1.0])
        assert report.within_guarantee_fraction == pytest.approx(0.5)
        assert report.relative_errors[0] == 0.0
        assert report.relative_errors[1] == float("inf")

    def test_mean_estimate_interval(self):
        report = AccuracyReport(
            name="x", length=3, exact=10, epsilon=0.3, estimates=[9.0, 10.0, 11.0]
        )
        mean, low, high = report.mean_estimate_interval()
        assert low <= mean <= high

    def test_compare_estimators(self):
        nfa = families.parity_nfa(2)

        def exact_estimator(automaton, length, _seed):
            return float(count_exact(automaton, length))

        reports = compare_estimators(
            nfa, 6, [("a", exact_estimator), ("b", exact_estimator)], epsilon=0.2, trials=2
        )
        assert len(reports) == 2
        assert all(report.exact == count_exact(nfa, 6) for report in reports)


class TestComplexityModel:
    def test_point_ratios(self):
        point = complexity_point(10, 10, 0.5)
        assert point.sample_ratio > 1.0
        assert point.time_ratio > 1.0
        assert point.as_row()["m"] == 10

    def test_sample_ratio_grows_with_m(self):
        small = complexity_point(5, 10, 0.5)
        large = complexity_point(50, 10, 0.5)
        assert large.sample_ratio > small.sample_ratio

    def test_table_size(self):
        table = samples_per_state_table((5, 10), (10, 20), (0.5, 0.1))
        assert len(table) == 8

    def test_compare_time_bounds_rows(self):
        rows = compare_time_bounds((5, 10, 20), 10, 0.3)
        assert [row.num_states for row in rows] == [5, 10, 20]

    def test_speedup_ratio_positive(self):
        assert speedup_ratio(10, 10, 0.3) > 1.0

    def test_growth_exponent_recovers_power_law(self):
        xs = [1.0, 2.0, 4.0, 8.0]
        ys = [x**3 for x in xs]
        assert growth_exponent(xs, ys) == pytest.approx(3.0, abs=1e-9)

    def test_growth_exponent_invalid_inputs(self):
        with pytest.raises(ValueError):
            growth_exponent([1.0], [1.0])
        with pytest.raises(ValueError):
            growth_exponent([2.0, 2.0], [1.0, 2.0])
