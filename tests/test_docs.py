"""Documentation gates: doctests, docstring coverage and docs/ integrity.

The reference documentation added with the batching/registry work must not
rot: this module runs the public-API doctests as part of tier-1 (CI
additionally runs ``pytest --doctest-modules`` on the same files), enforces
the docstring-coverage floor via :mod:`tools.check_docstrings`, and checks
that the ``docs/`` subsystem exists and is cross-linked from the README.
"""

from __future__ import annotations

import doctest
import importlib
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Public-API modules whose docstring examples must stay runnable.
DOCTEST_MODULES = [
    "repro.automata.engine",
    "repro.automata.bitset",
    "repro.automata.block",
    "repro.counting.params",
    "repro.counting.union",
    "repro.counting.fpras",
    "repro.counting.api",
    "repro.corpus.registry",
]

#: The floor CI enforces with ``tools/check_docstrings.py --fail-under 80``.
COVERAGE_FLOOR = 80.0


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.attempted > 0, f"{module_name} has no doctest examples"
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"


def _load_checker():
    sys.path.insert(0, str(REPO_ROOT / "tools"))
    try:
        return importlib.import_module("check_docstrings")
    finally:
        sys.path.pop(0)


def test_docstring_coverage_floor():
    checker = _load_checker()
    documented = 0
    documentable = 0
    for path in checker.iter_python_files([str(REPO_ROOT / "src" / "repro")]):
        file_documented, file_documentable, _missing = checker.audit_file(path)
        documented += file_documented
        documentable += file_documentable
    coverage = 100.0 * documented / documentable
    assert coverage >= COVERAGE_FLOOR, (
        f"docstring coverage {coverage:.1f}% fell below {COVERAGE_FLOOR}% "
        f"({documented}/{documentable}); run "
        f"`python tools/check_docstrings.py --verbose src/repro` for the list"
    )


def test_checker_cli_contract():
    checker = _load_checker()
    target = str(REPO_ROOT / "src" / "repro" / "automata" / "engine.py")
    assert checker.main(["--fail-under", "10", target]) == 0
    assert checker.main(["--fail-under", "100.1", target]) == 1


def test_docs_subsystem_exists_and_is_linked():
    architecture = REPO_ROOT / "docs" / "architecture.md"
    api = REPO_ROOT / "docs" / "api.md"
    assert architecture.is_file(), "docs/architecture.md is missing"
    assert api.is_file(), "docs/api.md is missing"
    readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    assert "docs/architecture.md" in readme, "README must link the architecture doc"
    assert "docs/api.md" in readme, "README must link the API reference"
    # The docs must cover the subsystems this layer introduced.
    api_text = api.read_text(encoding="utf-8")
    for symbol in (
        "EngineRegistry",
        "simulate_batch",
        "membership_batch",
        "--no-engine-cache",
        "engine_counters",
        "BlockEngine",
        "AUTO_BLOCK_THRESHOLD",
        "nfa_to_text",
    ):
        assert symbol in api_text, f"docs/api.md must document {symbol}"
    architecture_text = architecture.read_text(encoding="utf-8")
    for term in ("batch", "registry", "unroll", "block", "serialization"):
        assert term.lower() in architecture_text.lower(), (
            f"docs/architecture.md must discuss {term}"
        )
