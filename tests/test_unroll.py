"""Unit tests for the unrolled automaton and its membership oracles."""

from __future__ import annotations

import pytest

from repro.automata.nfa import NFA
from repro.automata.unroll import ReachabilityCache, UnrolledAutomaton
from repro.errors import AutomatonError


class TestReachabilityCache:
    def test_reachable_matches_direct_simulation(self, substring_101_nfa):
        cache = ReachabilityCache(substring_101_nfa)
        for word in ("", "1", "10", "101", "0101", "111"):
            assert cache.reachable(word) == substring_101_nfa.reachable_states(word)

    def test_contains_is_membership_in_state_language(self, substring_101_nfa):
        cache = ReachabilityCache(substring_101_nfa)
        # "101" completes the pattern, so the accepting state is reachable.
        assert cache.contains("done", "101")
        assert not cache.contains("done", "100")

    def test_contains_any(self, substring_101_nfa):
        cache = ReachabilityCache(substring_101_nfa)
        assert cache.contains_any(["done", "wait"], "000")
        assert not cache.contains_any(["done"], "000")

    def test_prefix_sharing_reduces_simulated_steps(self, substring_101_nfa):
        cache = ReachabilityCache(substring_101_nfa)
        cache.reachable("10101")
        steps_after_first = cache.simulated_steps
        cache.reachable("101011")  # extends a cached prefix by one symbol
        assert cache.simulated_steps == steps_after_first + 1

    def test_cache_grows_with_prefixes(self, substring_101_nfa):
        cache = ReachabilityCache(substring_101_nfa)
        cache.reachable("0101")
        assert len(cache) == 5  # the empty prefix plus four proper prefixes


class TestUnrolledStructure:
    def test_negative_length_rejected(self, substring_101_nfa):
        with pytest.raises(AutomatonError):
            UnrolledAutomaton(substring_101_nfa, -1)

    def test_live_states_level_zero_is_initial(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 4)
        assert unroll.live_states(0) == frozenset({substring_101_nfa.initial})

    def test_live_states_match_nonempty_languages(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 5)
        for level in range(6):
            for state in substring_101_nfa.states:
                has_word = any(
                    state in substring_101_nfa.reachable_states(word)
                    for word in _all_words(level)
                )
                assert unroll.is_live(state, level) == has_word

    def test_level_out_of_range_rejected(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 3)
        with pytest.raises(AutomatonError):
            unroll.live_states(4)
        with pytest.raises(AutomatonError):
            unroll.live_states(-1)

    def test_predecessors_restricted_to_live(self):
        # State "b" is only reachable at odd levels; its predecessor "a" only at even.
        nfa = NFA.build([("a", "0", "b"), ("b", "0", "a")], initial="a", accepting=["b"])
        unroll = UnrolledAutomaton(nfa, 4)
        assert unroll.predecessors("b", "0", 1) == frozenset({"a"})
        assert unroll.predecessors("a", "0", 1) == frozenset()
        assert unroll.predecessors("a", "0", 2) == frozenset({"b"})

    def test_predecessors_level_zero_empty(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 3)
        assert unroll.predecessors("wait", "0", 0) == frozenset()

    def test_predecessors_of_set_is_union(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 4)
        merged = unroll.predecessors_of_set(["wait", "m1"], "1", 3)
        expected = unroll.predecessors("wait", "1", 3) | unroll.predecessors("m1", "1", 3)
        assert merged == expected

    def test_accepting_live_states(self, substring_101_nfa):
        unroll_short = UnrolledAutomaton(substring_101_nfa, 2)
        assert unroll_short.accepting_live_states() == frozenset()
        unroll_long = UnrolledAutomaton(substring_101_nfa, 3)
        assert unroll_long.accepting_live_states() == frozenset({"done"})

    def test_slice_size_upper_bound(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 4)
        assert unroll.slice_size_upper_bound(3) == 8


class TestOracles:
    def test_member_and_union_oracle(self, fibonacci_nfa):
        unroll = UnrolledAutomaton(fibonacci_nfa, 5)
        assert unroll.member("z", "00100")
        assert not unroll.member("o", "00100")  # last symbol 0 -> state z only
        assert unroll.member_of_union(["z", "o"], "00101")

    def test_membership_oracle_closure(self, fibonacci_nfa):
        unroll = UnrolledAutomaton(fibonacci_nfa, 5)
        oracle = unroll.membership_oracle("o")
        assert oracle("01") is True
        assert oracle("00") is False

    def test_warm_cache_precomputes(self, fibonacci_nfa):
        unroll = UnrolledAutomaton(fibonacci_nfa, 5)
        unroll.warm_cache(["01010", "00100"])
        before = unroll.cache.simulated_steps
        unroll.member("z", "01010")
        assert unroll.cache.simulated_steps == before  # no extra simulation needed


class TestWitness:
    def test_witness_is_in_state_language(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 6)
        for state in substring_101_nfa.states:
            for level in range(7):
                witness = unroll.witness(state, level)
                if unroll.is_live(state, level):
                    assert witness is not None
                    assert len(witness) == level
                    assert state in substring_101_nfa.reachable_states(witness)
                else:
                    assert witness is None

    def test_witness_level_zero(self, substring_101_nfa):
        unroll = UnrolledAutomaton(substring_101_nfa, 2)
        assert unroll.witness(substring_101_nfa.initial, 0) == ()


def _all_words(length: int):
    """All binary words of the given length (test helper)."""
    import itertools

    return [tuple(bits) for bits in itertools.product("01", repeat=length)]
