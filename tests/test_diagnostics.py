"""Tests for the Inv-1 / Inv-2 invariant diagnostics."""

from __future__ import annotations

import pytest

from repro.automata import families
from repro.counting.diagnostics import (
    EstimateCheck,
    check_estimates,
    check_invariants,
    check_samples,
)
from repro.counting.fpras import NFACounter
from repro.errors import ParameterError


@pytest.fixture
def completed_counter(accurate_parameters):
    counter = NFACounter(families.no_consecutive_ones_nfa(), 7, accurate_parameters)
    counter.run()
    return counter


class TestEstimateChecks:
    def test_requires_completed_counter(self, fibonacci_nfa, fast_parameters):
        counter = NFACounter(fibonacci_nfa, 4, fast_parameters)
        with pytest.raises(ParameterError):
            check_estimates(counter)

    def test_checks_cover_all_live_pairs(self, completed_counter):
        checks = check_estimates(completed_counter)
        live_pairs = sum(
            len(completed_counter.unroll.live_states(level))
            for level in range(completed_counter.length + 1)
        )
        assert len(checks) == live_pairs

    def test_inv1_holds_on_well_behaved_instance(self, completed_counter):
        report = check_invariants(completed_counter)
        assert report.inv1_fraction >= 0.9
        assert report.worst_estimate_ratio < 2.0

    def test_estimate_check_ratio_and_holds(self):
        check = EstimateCheck(state="q", level=3, exact=100, estimate=120.0, allowed_factor=1.3)
        assert check.ratio == pytest.approx(1.2)
        assert check.holds
        tight = EstimateCheck(state="q", level=3, exact=100, estimate=150.0, allowed_factor=1.3)
        assert not tight.holds

    def test_empty_slice_handling(self):
        check = EstimateCheck(state="q", level=2, exact=0, estimate=0.0, allowed_factor=1.5)
        assert check.holds
        bad = EstimateCheck(state="q", level=2, exact=0, estimate=3.0, allowed_factor=1.5)
        assert not bad.holds
        assert bad.ratio == float("inf")

    def test_custom_allowed_factor(self, completed_counter):
        loose = check_estimates(completed_counter, allowed_factor=10.0)
        assert all(check.holds for check in loose)


class TestSampleChecks:
    def test_requires_completed_counter(self, fibonacci_nfa, fast_parameters):
        counter = NFACounter(fibonacci_nfa, 4, fast_parameters)
        with pytest.raises(ParameterError):
            check_samples(counter)

    def test_sample_checks_report_tv(self, completed_counter):
        checks = check_samples(completed_counter)
        assert checks
        for check in checks:
            assert 0.0 <= check.tv_distance <= 1.0
            assert check.sample_size > 0
            assert check.slice_size > 0

    def test_large_slices_skipped(self, completed_counter):
        checks = check_samples(completed_counter, max_slice_size=2)
        assert all(2 ** check.level <= 2 for check in checks)

    def test_excess_tv_moderate(self, completed_counter):
        report = check_invariants(completed_counter)
        # With 24 stored samples the noise floor is high; the excess above it
        # should stay moderate on this easy instance.
        assert report.max_excess_tv <= 0.5


class TestReport:
    def test_summary_keys(self, completed_counter):
        summary = check_invariants(completed_counter).summary()
        assert set(summary) == {
            "pairs_checked",
            "inv1_fraction",
            "worst_estimate_ratio",
            "sample_multisets_checked",
            "max_excess_tv",
        }

    def test_violations_listed(self, completed_counter):
        report = check_invariants(completed_counter, allowed_factor=1.0000001)
        # With an (effectively) zero-width band most non-trivial estimates violate.
        assert len(report.estimate_violations) >= 0
        assert report.inv1_fraction <= 1.0

    def test_empty_report_defaults(self):
        from repro.counting.diagnostics import InvariantReport

        report = InvariantReport()
        assert report.inv1_fraction == 1.0
        assert report.max_excess_tv == 0.0
        assert report.worst_estimate_ratio == 1.0
