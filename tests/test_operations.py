"""Unit tests for language-level NFA operations."""

from __future__ import annotations

import pytest

from repro.automata import families
from repro.automata.exact import count_exact
from repro.automata.nfa import NFA
from repro.automata.operations import (
    concatenation,
    disjoint_union_states,
    intersection,
    relabel_symbols,
    restrict_alphabet,
    union,
)
from repro.errors import AutomatonError


@pytest.fixture
def contains_00():
    return families.substring_nfa("00")


@pytest.fixture
def contains_11():
    return families.substring_nfa("11")


class TestIntersection:
    def test_product_accepts_only_common_words(self, contains_00, contains_11):
        product = intersection(contains_00, contains_11)
        assert product.accepts("0011")
        assert product.accepts("1100")
        assert not product.accepts("0101")
        assert not product.accepts("0010")

    def test_product_slice_counts_by_inclusion_exclusion(self, contains_00, contains_11):
        product = intersection(contains_00, contains_11)
        both = union([contains_00, contains_11])
        for length in range(7):
            # |A| + |B| = |A ∪ B| + |A ∩ B|
            assert count_exact(contains_00, length) + count_exact(contains_11, length) == (
                count_exact(both, length) + count_exact(product, length)
            )

    def test_product_state_bound(self, contains_00, contains_11):
        product = intersection(contains_00, contains_11)
        assert product.num_states <= contains_00.num_states * contains_11.num_states

    def test_disjoint_alphabets_rejected(self):
        left = NFA.build([("a", "x", "a")], initial="a", accepting=["a"])
        right = NFA.build([("b", "y", "b")], initial="b", accepting=["b"])
        with pytest.raises(AutomatonError):
            intersection(left, right)

    def test_intersection_with_all_words_is_identity_on_counts(self, contains_00):
        everything = families.all_words_nfa()
        product = intersection(contains_00, everything)
        for length in range(6):
            assert count_exact(product, length) == count_exact(contains_00, length)


class TestUnion:
    def test_union_accepts_either(self, contains_00, contains_11):
        merged = union([contains_00, contains_11])
        assert merged.accepts("100")
        assert merged.accepts("011")
        assert not merged.accepts("0101")

    def test_union_counts_at_most_sum(self, contains_00, contains_11):
        merged = union([contains_00, contains_11])
        for length in range(7):
            assert count_exact(merged, length) <= count_exact(contains_00, length) + count_exact(
                contains_11, length
            )
            assert count_exact(merged, length) >= max(
                count_exact(contains_00, length), count_exact(contains_11, length)
            )

    def test_union_preserves_empty_word_acceptance(self):
        accepts_empty = NFA.build([("a", "0", "a")], initial="a", accepting=["a"])
        rejects_empty = families.substring_nfa("0")
        merged = union([rejects_empty, accepts_empty])
        assert merged.accepts("")

    def test_union_of_single_automaton(self, contains_00):
        merged = union([contains_00])
        for length in range(6):
            assert count_exact(merged, length) == count_exact(contains_00, length)

    def test_union_of_zero_automata_rejected(self):
        with pytest.raises(AutomatonError):
            union([])

    def test_union_merges_alphabets(self):
        left = NFA.build([("a", "x", "a")], initial="a", accepting=["a"])
        right = NFA.build([("b", "y", "b")], initial="b", accepting=["b"])
        merged = union([left, right])
        assert set(merged.alphabet) == {"x", "y"}
        assert merged.accepts(("x", "x"))
        assert merged.accepts(("y",))
        assert not merged.accepts(("x", "y"))


class TestConcatenation:
    def test_concatenation_accepts_split_words(self):
        starts = families.suffix_nfa("1")  # anything ending in 1
        ends = families.suffix_nfa("0")  # anything ending in 0
        joined = concatenation(starts, ends)
        assert joined.accepts("10")
        assert joined.accepts("0110")  # 01|10 or 011|0
        assert not joined.accepts("01")

    def test_concatenation_with_empty_word_right(self):
        left = families.substring_nfa("1")
        right = NFA.build([("a", "0", "a")], initial="a", accepting=["a"])  # 0*, accepts ""
        joined = concatenation(left, right)
        assert joined.accepts("1")
        assert joined.accepts("100")
        assert not joined.accepts("000")

    def test_concatenation_counts(self):
        # (words ending in 1) . (single 0) == words ending in 10
        left = families.suffix_nfa("1")
        right = NFA.build([("a", "0", "b")], initial="a", accepting=["b"])
        joined = concatenation(left, right)
        expected = families.suffix_nfa("10")
        for length in range(7):
            assert count_exact(joined, length) == count_exact(expected, length)


class TestSymbolOperations:
    def test_restrict_alphabet_drops_transitions(self):
        nfa = NFA.build(
            [("a", "0", "b"), ("a", "1", "b"), ("b", "0", "b")],
            initial="a",
            accepting=["b"],
        )
        restricted = restrict_alphabet(nfa, ["0"])
        assert restricted.accepts("0")
        assert not restricted.accepts("1")
        assert restricted.alphabet == ("0",)

    def test_relabel_symbols(self):
        nfa = families.substring_nfa("01")
        relabeled = relabel_symbols(nfa, {"0": "a", "1": "b"})
        assert relabeled.accepts(("a", "b"))
        assert not relabeled.accepts(("b", "a"))
        for length in range(6):
            assert count_exact(relabeled, length) == count_exact(nfa, length)

    def test_relabel_symbols_requires_injectivity(self):
        nfa = families.substring_nfa("01")
        with pytest.raises(AutomatonError):
            relabel_symbols(nfa, {"0": "x", "1": "x"})

    def test_disjoint_union_states(self, contains_00, contains_11):
        relabeled = disjoint_union_states([contains_00, contains_11])
        assert not (relabeled[0].states & relabeled[1].states)
        for original, copy in zip((contains_00, contains_11), relabeled):
            for length in range(5):
                assert count_exact(copy, length) == count_exact(original, length)
