"""Unit tests for Algorithm 1 (AppUnion, the Karp–Luby union estimator)."""

from __future__ import annotations

import random

import pytest

from repro.counting.params import FPRASParameters, ParameterScale
from repro.counting.union import SetAccess, approximate_union
from repro.errors import ParameterError, SampleExhaustedError


def _make_set_access(elements, rng, sample_size=None, size_estimate=None, label=None):
    """Build a SetAccess with uniform samples and a perfect oracle."""
    elements = list(elements)
    sample_size = sample_size if sample_size is not None else 4 * max(1, len(elements))
    samples = [rng.choice(elements) for _ in range(sample_size)] if elements else []
    return SetAccess(
        oracle=lambda item, members=frozenset(elements): item in members,
        samples=samples,
        size_estimate=size_estimate if size_estimate is not None else len(elements),
        label=label,
    )


@pytest.fixture
def parameters():
    return FPRASParameters(
        epsilon=0.3,
        delta=0.1,
        scale=ParameterScale.practical(sample_cap=64, union_trial_cap=600),
    )


class TestInputValidation:
    def test_epsilon_must_be_positive(self, parameters):
        with pytest.raises(ParameterError):
            approximate_union([], epsilon=0.0, delta=0.1, size_slack=0.0, parameters=parameters)

    def test_delta_must_be_probability(self, parameters):
        with pytest.raises(ParameterError):
            approximate_union([], epsilon=0.5, delta=0.0, size_slack=0.0, parameters=parameters)

    def test_empty_input_gives_zero(self, parameters):
        estimate = approximate_union(
            [], epsilon=0.5, delta=0.1, size_slack=0.0, parameters=parameters
        )
        assert estimate.estimate == 0.0
        assert estimate.trials == 0

    def test_all_zero_sizes_give_zero(self, parameters):
        rng = random.Random(0)
        sets = [_make_set_access([], rng, size_estimate=0)]
        estimate = approximate_union(
            sets, epsilon=0.5, delta=0.1, size_slack=0.0, parameters=parameters
        )
        assert estimate.estimate == 0.0


class TestEstimationQuality:
    def test_single_set_returns_its_size(self, parameters):
        rng = random.Random(1)
        sets = [_make_set_access(range(50), rng)]
        estimate = approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
        )
        # With one set every sample is unique, so the estimate is exactly sz_1.
        assert estimate.estimate == pytest.approx(50.0)
        assert estimate.unique_fraction == 1.0

    def test_disjoint_sets_sum(self, parameters):
        rng = random.Random(2)
        sets = [
            _make_set_access(range(0, 30), rng, label="a"),
            _make_set_access(range(100, 130), rng, label="b"),
        ]
        estimate = approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.estimate == pytest.approx(60.0)

    def test_identical_sets_do_not_double_count(self, parameters):
        rng = random.Random(3)
        universe = list(range(40))
        sets = [
            _make_set_access(universe, rng, label="first"),
            _make_set_access(universe, rng, label="second"),
        ]
        estimate = approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
        )
        # |T1 ∪ T2| = 40 even though sz_1 + sz_2 = 80.
        assert estimate.estimate == pytest.approx(40.0, rel=0.25)

    def test_partial_overlap(self, parameters):
        rng = random.Random(4)
        sets = [
            _make_set_access(range(0, 60), rng),
            _make_set_access(range(30, 90), rng),
        ]
        estimate = approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.estimate == pytest.approx(90.0, rel=0.25)

    def test_many_small_sets(self, parameters):
        rng = random.Random(5)
        sets = [_make_set_access(range(i, i + 10), rng) for i in range(0, 50, 5)]
        # Union is range(0, 59) -> 59 elements.
        estimate = approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.estimate == pytest.approx(59.0, rel=0.3)

    def test_estimate_respects_inflated_size_estimates(self, parameters):
        # Size estimates carrying slack still give a union estimate within the
        # combined multiplicative error of Theorem 1.
        rng = random.Random(6)
        universe = list(range(50))
        sets = [
            _make_set_access(universe, rng, size_estimate=55),
            _make_set_access(universe, rng, size_estimate=45),
        ]
        estimate = approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.1, parameters=parameters, rng=rng
        )
        assert 50 / 1.5 <= estimate.estimate <= 50 * 1.5

    def test_reproducible_with_seeded_rng(self, parameters):
        def run(seed):
            rng = random.Random(seed)
            sets = [
                _make_set_access(range(0, 40), rng),
                _make_set_access(range(20, 60), rng),
            ]
            return approximate_union(
                sets, epsilon=0.3, delta=0.1, size_slack=0.0, parameters=parameters, rng=rng
            ).estimate

        assert run(42) == run(42)


class TestDiagnostics:
    def test_membership_calls_counted(self, parameters):
        rng = random.Random(7)
        sets = [
            _make_set_access(range(0, 30), rng),
            _make_set_access(range(0, 30), rng),
        ]
        estimate = approximate_union(
            sets, epsilon=0.3, delta=0.1, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.membership_calls > 0
        assert estimate.membership_calls <= estimate.trials

    def test_trials_respect_scaled_cap(self):
        parameters = FPRASParameters(
            epsilon=0.3, scale=ParameterScale.practical(union_trial_cap=10)
        )
        rng = random.Random(8)
        sets = [_make_set_access(range(100), rng), _make_set_access(range(100), rng)]
        estimate = approximate_union(
            sets, epsilon=0.05, delta=0.01, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.trials <= 10

    def test_sum_of_sizes_reported(self, parameters):
        rng = random.Random(9)
        sets = [_make_set_access(range(10), rng), _make_set_access(range(5), rng)]
        estimate = approximate_union(
            sets, epsilon=0.3, delta=0.1, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.sum_of_sizes == pytest.approx(15.0)

    def test_unique_fraction_bounds(self, parameters):
        rng = random.Random(10)
        sets = [_make_set_access(range(20), rng), _make_set_access(range(20), rng)]
        estimate = approximate_union(
            sets, epsilon=0.3, delta=0.1, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert 0.0 <= estimate.unique_fraction <= 1.0


class TestSampleConsumption:
    def test_cyclic_mode_survives_small_sample_lists(self):
        parameters = FPRASParameters(
            epsilon=0.3, scale=ParameterScale.practical(union_trial_cap=200)
        )
        rng = random.Random(11)
        sets = [
            _make_set_access(range(50), rng, sample_size=3),
            _make_set_access(range(50, 100), rng, sample_size=3),
        ]
        estimate = approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.exhausted
        assert estimate.estimate == pytest.approx(100.0, rel=0.35)

    def test_strict_mode_stops_early(self):
        parameters = FPRASParameters(
            epsilon=0.3,
            scale=ParameterScale.practical(union_trial_cap=500).with_overrides(
                strict_sample_consumption=True
            ),
        )
        rng = random.Random(12)
        sets = [
            _make_set_access(range(50), rng, sample_size=2),
            _make_set_access(range(50, 100), rng, sample_size=2),
        ]
        estimate = approximate_union(
            sets, epsilon=0.1, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.exhausted
        assert estimate.trials <= 5  # 2 + 2 dequeues plus the failing attempt

    def test_strict_mode_can_raise(self):
        parameters = FPRASParameters(
            epsilon=0.3,
            scale=ParameterScale.practical(union_trial_cap=500).with_overrides(
                strict_sample_consumption=True
            ),
        )
        rng = random.Random(13)
        sets = [_make_set_access(range(50), rng, sample_size=1)]
        with pytest.raises(SampleExhaustedError):
            approximate_union(
                sets,
                epsilon=0.1,
                delta=0.05,
                size_slack=0.0,
                parameters=parameters,
                rng=rng,
                raise_on_exhaustion=True,
            )

    def test_empty_sample_list_with_positive_size(self, parameters):
        # A positive size estimate but no stored samples cannot contribute
        # unique hits; the call still terminates and reports exhaustion.
        rng = random.Random(14)
        sets = [
            SetAccess(oracle=lambda _x: True, samples=[], size_estimate=10.0),
            _make_set_access(range(10, 20), rng),
        ]
        estimate = approximate_union(
            sets, epsilon=0.3, delta=0.1, size_slack=0.0, parameters=parameters, rng=rng
        )
        assert estimate.exhausted
        assert estimate.estimate >= 0.0
