"""Tests for the experiment harness and text reporting."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.harness.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    get_experiment,
    run_applications,
    run_experiment,
    run_sample_complexity,
    run_uniformity,
)
from repro.harness.reporting import format_key_values, format_series, format_table


class TestReporting:
    def test_format_table_alignment_and_header(self):
        rows = [{"name": "a", "value": 1.0}, {"name": "bb", "value": 22.5}]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 2 + 1 + len(rows)

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="nothing")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_format_table_scientific_notation(self):
        text = format_table([{"x": 1.23e12}])
        assert "e+12" in text

    def test_format_table_booleans(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_format_series(self):
        text = format_series([1, 2], {"fpras": [0.1, 0.2], "exact": [0.1, 0.2]}, x_label="n")
        assert "fpras" in text and "exact" in text
        assert text.splitlines()[0].startswith("n")

    def test_format_key_values(self):
        text = format_key_values({"alpha": 1, "beta": 2.5}, title="params")
        assert text.splitlines()[0] == "params"
        assert "alpha" in text and "2.5" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == {"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"}

    def test_get_experiment_case_insensitive(self):
        assert get_experiment("e1") is EXPERIMENTS["E1"]

    def test_get_experiment_unknown(self):
        with pytest.raises(ExperimentError):
            get_experiment("E99")

    def test_experiment_result_helpers(self):
        result = ExperimentResult(experiment="X", description="demo")
        result.add_row(a=1)
        result.add_note("hello")
        assert result.rows == [{"a": 1}]
        assert result.notes == ["hello"]


class TestRunners:
    def test_sample_complexity_rows(self):
        result = run_sample_complexity(quick=True)
        assert result.experiment == "E1"
        assert len(result.rows) == 3 * 2 * 2
        for row in result.rows:
            assert row["paper_samples"] < row["acjr_samples"]
            assert row["sample_ratio"] > 1.0

    def test_sample_complexity_m_independence(self):
        result = run_sample_complexity(quick=True)
        by_n_eps = {}
        for row in result.rows:
            by_n_eps.setdefault((row["n"], row["epsilon"]), set()).add(row["paper_samples"])
        # For fixed (n, epsilon) the paper's per-state sample count does not
        # change with m.
        assert all(len(values) == 1 for values in by_n_eps.values())

    def test_accuracy_experiment_small(self):
        result = run_experiment("E2", quick=True, trials=1, length=6)
        assert result.rows
        for row in result.rows:
            assert row["exact"] >= 0
            assert row["mean_rel_error"] < 1.0

    def test_uniformity_experiment(self):
        result = run_uniformity(quick=True, sample_count=80)
        assert len(result.rows) == 3
        for row in result.rows:
            assert 0.0 <= row["tv_distance"] <= 1.0
            assert row["samples"] <= 80

    def test_applications_experiment(self):
        result = run_applications(quick=True)
        assert len(result.rows) == 3
        for row in result.rows:
            assert row["rel_error"] < 0.5

    def test_run_experiment_unknown(self):
        with pytest.raises(ExperimentError):
            run_experiment("nope")

    def test_results_render_as_tables(self):
        result = run_sample_complexity(quick=True)
        text = format_table(result.rows, title=result.description)
        assert result.description in text
