"""Property-based tests (hypothesis) for the core data structures and invariants.

These cover structural invariants that must hold for *every* automaton, not
just the hand-picked examples: agreement between independent exact counters,
monotonicity/inclusion–exclusion of language operations, length preservation
of transformations, and the deterministic behaviour of the Karp–Luby
estimator under perfect inputs.
"""

from __future__ import annotations

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.automata.dfa import determinize, minimize
from repro.automata.exact import count_exact, count_exact_via_dfa, count_per_state_exact
from repro.automata.nfa import NFA
from repro.automata.operations import intersection, union
from repro.automata.random_gen import random_nfa
from repro.counting.bruteforce import count_bruteforce
from repro.counting.params import FPRASParameters, ParameterScale
from repro.counting.union import SetAccess, approximate_union

# Hypothesis draws the *seed* of the structured random generator, which keeps
# shrinking effective while exploring a rich space of automata.
nfa_seeds = st.integers(min_value=0, max_value=10_000)
small_sizes = st.integers(min_value=1, max_value=6)
small_lengths = st.integers(min_value=0, max_value=6)

COMMON_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _draw_nfa(seed: int, size: int, density: float = 0.35) -> NFA:
    return random_nfa(size, density=density, seed=seed)


# ----------------------------------------------------------------------
# Exact counting invariants
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=small_lengths)
def test_subset_dp_agrees_with_bruteforce(seed, size, length):
    nfa = _draw_nfa(seed, size)
    assert count_exact(nfa, length) == count_bruteforce(nfa, length)


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=small_lengths)
def test_subset_dp_agrees_with_determinisation(seed, size, length):
    nfa = _draw_nfa(seed, size)
    assert count_exact(nfa, length) == count_exact_via_dfa(nfa, length)


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=0, max_value=5))
def test_slice_count_bounded_by_alphabet_power(seed, size, length):
    nfa = _draw_nfa(seed, size)
    assert 0 <= count_exact(nfa, length) <= 2**length


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=1, max_value=5))
def test_per_state_counts_partition_by_last_symbol(seed, size, length):
    """|L(q^l)| equals the size of the union of predecessor languages split by symbol.

    This is the identity Algorithm 3 exploits:
    L(q^l) = (U_{p in Pred(q,0)} L(p^{l-1})) . 0  ⊎  (U_{p in Pred(q,1)} L(p^{l-1})) . 1.
    """
    from repro.automata.exact import ExactCounter

    nfa = _draw_nfa(seed, size)
    counter = ExactCounter(nfa)
    counter.advance_to(length)
    for state in nfa.states:
        expected = 0
        for symbol in nfa.alphabet:
            predecessors = nfa.predecessors(state, symbol)
            expected += counter.union_count(predecessors, length - 1)
        assert counter.state_count(state, length) == expected


# ----------------------------------------------------------------------
# Operation invariants
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=0, max_value=5))
def test_union_and_intersection_inclusion_exclusion(seed, size, length):
    first = _draw_nfa(seed, size)
    second = _draw_nfa(seed + 1, size)
    union_count = count_exact(union([first, second]), length)
    try:
        intersection_count = count_exact(intersection(first, second), length)
    except Exception:
        return  # disjoint alphabets cannot occur here, but stay safe
    assert union_count + intersection_count == count_exact(first, length) + count_exact(
        second, length
    )


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=0, max_value=5))
def test_reverse_preserves_slice_counts(seed, size, length):
    nfa = _draw_nfa(seed, size)
    assert count_exact(nfa.reverse(), length) == count_exact(nfa, length)


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=0, max_value=5))
def test_single_accepting_normalisation_preserves_counts(seed, size, length):
    nfa = _draw_nfa(seed, size)
    assert count_exact(nfa.normalized_single_accepting(), length) == count_exact(nfa, length)


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=0, max_value=5))
def test_trim_preserves_counts(seed, size, length):
    nfa = _draw_nfa(seed, size)
    assert count_exact(nfa.trim(), length) == count_exact(nfa, length)


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes)
def test_minimized_dfa_preserves_counts(seed, size):
    nfa = _draw_nfa(seed, size)
    dfa = determinize(nfa)
    minimal = minimize(dfa)
    for length in range(5):
        assert minimal.count_slice(length) == dfa.count_slice(length)
    assert minimal.num_states <= dfa.completed().num_states


# ----------------------------------------------------------------------
# Unrolling invariants
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=0, max_value=5))
def test_live_states_exactly_nonempty_languages(seed, size, length):
    from repro.automata.unroll import UnrolledAutomaton

    nfa = _draw_nfa(seed, size)
    unroll = UnrolledAutomaton(nfa, length)
    table = count_per_state_exact(nfa, length)
    for state in nfa.states:
        for level in range(length + 1):
            assert unroll.is_live(state, level) == (table[(state, level)] > 0)


@COMMON_SETTINGS
@given(seed=nfa_seeds, size=small_sizes, length=st.integers(min_value=0, max_value=5))
def test_witnesses_belong_to_state_languages(seed, size, length):
    from repro.automata.unroll import UnrolledAutomaton

    nfa = _draw_nfa(seed, size)
    unroll = UnrolledAutomaton(nfa, length)
    for state in nfa.states:
        witness = unroll.witness(state, length) if unroll.is_live(state, length) else None
        if witness is not None:
            assert len(witness) == length
            assert state in nfa.reachable_states(witness)


# ----------------------------------------------------------------------
# AppUnion invariants under perfect inputs
# ----------------------------------------------------------------------
@COMMON_SETTINGS
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    sizes=st.lists(st.integers(min_value=1, max_value=30), min_size=1, max_size=4),
    overlap=st.integers(min_value=0, max_value=20),
)
def test_appunion_brackets_true_union_size(seed, sizes, overlap):
    """With perfect oracles, exact sizes and uniform samples, the estimate of
    |T_1 ∪ …| stays within a generous multiplicative factor of the truth."""
    rng = random.Random(seed)
    parameters = FPRASParameters(
        epsilon=0.3,
        delta=0.1,
        scale=ParameterScale.practical(sample_cap=64, union_trial_cap=400),
    )
    shared = list(range(-overlap, 0))
    accesses = []
    universe = set()
    cursor = 0
    for set_size in sizes:
        elements = shared + list(range(cursor, cursor + set_size))
        cursor += set_size
        universe.update(elements)
        samples = [rng.choice(elements) for _ in range(60)]
        accesses.append(
            SetAccess(
                oracle=lambda item, members=frozenset(elements): item in members,
                samples=samples,
                size_estimate=len(elements),
            )
        )
    estimate = approximate_union(
        accesses, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters, rng=rng
    )
    truth = len(universe)
    assert truth / 2.0 <= estimate.estimate <= truth * 2.0


@COMMON_SETTINGS
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_appunion_never_exceeds_sum_of_sizes(seed):
    rng = random.Random(seed)
    parameters = FPRASParameters(epsilon=0.3, delta=0.1)
    elements = list(range(25))
    accesses = [
        SetAccess(
            oracle=lambda item: item in set(elements),
            samples=[rng.choice(elements) for _ in range(20)],
            size_estimate=25,
        )
        for _ in range(3)
    ]
    estimate = approximate_union(
        accesses, epsilon=0.3, delta=0.1, size_slack=0.0, parameters=parameters, rng=rng
    )
    assert estimate.estimate <= estimate.sum_of_sizes + 1e-9
