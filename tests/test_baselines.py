"""Tests for the baseline counters: ACJR-style, Monte-Carlo and brute force."""

from __future__ import annotations

import pytest

from repro.automata import families
from repro.automata.exact import count_exact
from repro.automata.nfa import NFA
from repro.counting.acjr import ACJRCounter, ACJRParameters, count_nfa_acjr
from repro.counting.bruteforce import count_bruteforce
from repro.counting.montecarlo import count_montecarlo
from repro.counting.params import acjr_samples_per_state
from repro.errors import ParameterError


class TestBruteForce:
    def test_matches_exact_counter(self, substring_101_nfa):
        for length in range(8):
            assert count_bruteforce(substring_101_nfa, length) == count_exact(
                substring_101_nfa, length
            )

    def test_negative_length_rejected(self, substring_101_nfa):
        with pytest.raises(ParameterError):
            count_bruteforce(substring_101_nfa, -1)

    def test_limit_enforced(self, substring_101_nfa):
        with pytest.raises(ParameterError):
            count_bruteforce(substring_101_nfa, 30, limit=1000)

    def test_limit_can_be_disabled(self, substring_101_nfa):
        assert count_bruteforce(substring_101_nfa, 4, limit=None) == count_exact(
            substring_101_nfa, 4
        )


class TestMonteCarlo:
    def test_dense_language_estimate(self):
        nfa = families.all_words_nfa()
        estimate = count_montecarlo(nfa, 10, num_samples=500, seed=1)
        assert estimate.estimate == pytest.approx(1024.0)
        assert estimate.density_estimate == 1.0

    def test_moderate_density_estimate(self, substring_101_nfa):
        exact = count_exact(substring_101_nfa, 10)
        estimate = count_montecarlo(substring_101_nfa, 10, num_samples=6000, seed=2)
        assert estimate.relative_error(exact) < 0.15

    def test_sparse_language_misses(self):
        # Only a single word of length 12 is accepted; 200 random samples
        # essentially never find it — the failure mode the FPRAS avoids.
        transitions = [(f"s{i}", "0", f"s{i+1}") for i in range(12)]
        nfa = NFA.build(
            transitions, initial="s0", accepting=["s12"], alphabet=("0", "1")
        )
        estimate = count_montecarlo(nfa, 12, num_samples=200, seed=3)
        assert estimate.hits == 0
        assert estimate.estimate == 0.0

    def test_invalid_arguments(self, substring_101_nfa):
        with pytest.raises(ParameterError):
            count_montecarlo(substring_101_nfa, -1)
        with pytest.raises(ParameterError):
            count_montecarlo(substring_101_nfa, 4, num_samples=0)

    def test_reproducible_with_seed(self, substring_101_nfa):
        first = count_montecarlo(substring_101_nfa, 8, num_samples=500, seed=7)
        second = count_montecarlo(substring_101_nfa, 8, num_samples=500, seed=7)
        assert first.estimate == second.estimate

    def test_relative_error_zero_exact(self):
        nfa = NFA.build([("a", "0", "b")], initial="a", accepting=["b"])
        estimate = count_montecarlo(nfa, 3, num_samples=100, seed=1)
        assert estimate.relative_error(0) == 0.0


class TestACJRParameters:
    def test_invalid_epsilon(self):
        with pytest.raises(ParameterError):
            ACJRParameters(epsilon=0.0)

    def test_invalid_delta(self):
        with pytest.raises(ParameterError):
            ACJRParameters(delta=0.0)

    def test_invalid_sample_cap(self):
        with pytest.raises(ParameterError):
            ACJRParameters(sample_cap=1)

    def test_paper_sample_formula(self):
        params = ACJRParameters(epsilon=0.5)
        assert params.samples_per_state_paper(4, 5) == pytest.approx(
            acjr_samples_per_state(4, 5, 0.5)
        )

    def test_operational_samples_capped(self):
        params = ACJRParameters(epsilon=0.1, sample_cap=64)
        assert params.samples_per_state(10, 10) == 64

    def test_operational_samples_small_instance(self):
        params = ACJRParameters(epsilon=2.0, sample_cap=10**9)
        # kappa = mn/eps = 1 -> kappa^7 = 1 -> floor at 2.
        assert params.samples_per_state(1, 2) >= 2


class TestACJRCounter:
    def test_negative_length_rejected(self, substring_101_nfa):
        with pytest.raises(ParameterError):
            ACJRCounter(substring_101_nfa, -1)

    @pytest.mark.parametrize(
        "builder, length",
        [
            (lambda: families.substring_nfa("101"), 8),
            (lambda: families.no_consecutive_ones_nfa(), 8),
            (lambda: families.union_of_patterns_nfa(["00", "11"]), 7),
        ],
    )
    def test_accuracy(self, builder, length):
        nfa = builder()
        exact = count_exact(nfa, length)
        result = count_nfa_acjr(nfa, length, epsilon=0.3, sample_cap=64, seed=1)
        assert result.relative_error(exact) < 0.35

    def test_empty_slice(self):
        nfa = NFA.build([("a", "0", "b")], initial="a", accepting=["b"])
        result = count_nfa_acjr(nfa, 3, seed=1)
        assert result.estimate == 0.0

    def test_result_diagnostics(self, substring_101_nfa):
        result = count_nfa_acjr(substring_101_nfa, 6, epsilon=0.4, sample_cap=32, seed=2)
        assert result.ns == 32 or result.ns <= 32
        assert result.sample_draws >= result.sample_successes
        assert result.membership_calls >= 0
        assert result.elapsed_seconds > 0

    def test_deterministic_given_seed(self, suffix_nfa_0110):
        first = count_nfa_acjr(suffix_nfa_0110, 7, epsilon=0.4, seed=11).estimate
        second = count_nfa_acjr(suffix_nfa_0110, 7, epsilon=0.4, seed=11).estimate
        assert first == second

    def test_keeps_more_samples_than_new_scheme_formula(self):
        # The configured (pre-cap) sample counts preserve the paper's gap.
        params = ACJRParameters(epsilon=0.3)
        from repro.counting.params import paper_samples_per_state

        assert params.samples_per_state_paper(8, 10) > paper_samples_per_state(10, 0.3)
