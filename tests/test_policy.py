"""Typed execution policies and declarative method capabilities.

Pins the contracts behind the capability-negotiated API redesign:

* :class:`~repro.counting.policy.ExecutionPolicy` — validation, the
  defaults-omitted option emission that keeps the policy spelling
  fingerprint-neutral, and the ``CountRequest`` round trip;
* the deprecation shims: the flat execution kwargs on :func:`repro.count`
  and :class:`~repro.counting.api.CountingSession` keep working but warn,
  and the legacy ``supports_workers=`` registration flag maps onto
  :class:`~repro.counting.policy.MethodCapabilities`;
* the method registry's declared capabilities (which dispatch reads
  instead of ``getattr`` probes) and the engine-level capability records
  they mirror.
"""

from __future__ import annotations

import warnings

import pytest

from repro.automata import families
from repro.automata.engine import (
    EngineCapabilities,
    available_backends,
    backend_capabilities,
    create_engine,
)
from repro.counting.api import (
    METHOD_REGISTRY,
    RESULT_NEUTRAL_OPTIONS,
    CountingSession,
    CountRequest,
    canonical_request_knobs,
    count,
    register_method,
    request_fingerprint,
)
from repro.counting.policy import (
    POLICY_OPTION_NAMES,
    ExecutionPolicy,
    MethodCapabilities,
)
from repro.errors import ParameterError


class TestExecutionPolicyValidation:
    def test_defaults_are_the_implicit_policy(self):
        policy = ExecutionPolicy()
        assert policy.backend is None
        assert policy.use_engine_cache is True
        assert policy.workers == 1
        assert policy.method_options() == {}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError):
            ExecutionPolicy(backend="no-such-backend")

    def test_auto_backend_accepted(self):
        assert ExecutionPolicy(backend="auto").backend == "auto"

    @pytest.mark.parametrize(
        "knobs",
        [
            {"use_engine_cache": "yes"},
            {"workers": -1},
            {"shards": 0},
            {"store": "csv"},
            {"window": 0},
            {"kernel": "sometimes"},
        ],
    )
    def test_invalid_knobs_rejected(self, knobs):
        with pytest.raises(ParameterError):
            ExecutionPolicy(**knobs)

    def test_method_options_omit_defaults(self):
        # Core knobs never appear as options; managed options only when
        # non-default — the fingerprint-neutrality mechanism.
        assert ExecutionPolicy(backend="numpy", workers=4).method_options() == {}
        assert ExecutionPolicy(
            shards=3, store="windowed", window=2, kernel="off"
        ).method_options() == {
            "shards": 3,
            "store": "windowed",
            "window": 2,
            "kernel": "off",
        }

    def test_with_overrides(self):
        policy = ExecutionPolicy(backend="bitset")
        tweaked = policy.with_overrides(workers=2, kernel="off")
        assert tweaked.backend == "bitset"
        assert tweaked.workers == 2 and tweaked.kernel == "off"
        assert policy.workers == 1  # frozen original untouched

    def test_describe_lists_every_knob(self):
        described = ExecutionPolicy().describe()
        assert set(described) == {
            "backend",
            "use_engine_cache",
            "workers",
            *POLICY_OPTION_NAMES,
        }

    def test_policy_managed_options_are_result_neutral_or_plan_knobs(self):
        # Every managed option except the plan-selecting `shards` must be
        # result-neutral, or policies could perturb the result cache.
        assert set(POLICY_OPTION_NAMES) - {"shards"} <= RESULT_NEUTRAL_OPTIONS


class TestPolicyRequestRoundTrip:
    def test_policy_and_flat_spellings_denote_equal_requests(self):
        flat = CountRequest(
            method="fpras",
            seed=7,
            backend="bitset",
            workers=2,
            options={"store": "windowed"},
        )
        styled = CountRequest(
            method="fpras",
            seed=7,
            policy=ExecutionPolicy(backend="bitset", workers=2, store="windowed"),
        )
        assert styled == flat
        assert styled.policy is None  # consumed during normalisation

    def test_fingerprint_neutrality(self):
        nfa_doc = {"states": ["a"], "initial": "a", "transitions": [], "accepting": ["a"]}
        flat = CountRequest(method="fpras", seed=3, backend="bitset")
        styled = CountRequest(
            method="fpras", seed=3, policy=ExecutionPolicy(backend="bitset")
        )
        kernel_off = CountRequest(
            method="fpras",
            seed=3,
            policy=ExecutionPolicy(backend="bitset", kernel="off"),
        )
        assert canonical_request_knobs(styled, 6) == canonical_request_knobs(flat, 6)
        fingerprints = {
            request_fingerprint(nfa_doc, 6, request)
            for request in (flat, styled, kernel_off)
        }
        assert len(fingerprints) == 1  # kernel is result-neutral by contract

    def test_round_trip_from_request(self):
        policy = ExecutionPolicy(
            backend="numpy", workers=3, shards=2, store="windowed", kernel="off"
        )
        request = CountRequest(method="fpras", policy=policy)
        assert ExecutionPolicy.from_request(request) == policy
        assert request.execution_policy() == policy

    def test_conflicting_flat_knobs_rejected(self):
        with pytest.raises(ParameterError):
            CountRequest(
                method="fpras",
                backend="bitset",
                policy=ExecutionPolicy(backend="numpy"),
            )
        with pytest.raises(ParameterError):
            CountRequest(
                method="fpras",
                options={"kernel": "off"},
                policy=ExecutionPolicy(),
            )

    def test_policy_must_be_a_policy(self):
        with pytest.raises(ParameterError):
            CountRequest(method="fpras", policy={"backend": "bitset"})


class TestDeprecationShims:
    @pytest.fixture()
    def parity_nfa_2(self):
        return families.parity_nfa(2)

    def test_flat_kwargs_warn_on_count(self, parity_nfa_2):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            count(parity_nfa_2, 4, method="exact", backend="bitset")

    def test_flat_kwargs_warn_on_session(self):
        with pytest.warns(DeprecationWarning, match="ExecutionPolicy"):
            CountingSession(seed=1, workers=2)

    def test_policy_spelling_is_silent(self, parity_nfa_2):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = count(
                parity_nfa_2,
                4,
                method="exact",
                policy=ExecutionPolicy(backend="bitset"),
            )
            CountingSession(seed=1, policy=ExecutionPolicy(workers=2))
        assert report.raw == count(parity_nfa_2, 4, method="exact").raw

    def test_default_flat_values_do_not_warn(self, parity_nfa_2):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            count(parity_nfa_2, 4, method="exact")

    def test_session_policy_flows_into_requests(self, parity_nfa_2):
        session = CountingSession(
            epsilon=0.5,
            seed=5,
            policy=ExecutionPolicy(backend="bitset", kernel="off"),
        )
        pinned = session.request()
        assert pinned.backend == "bitset"
        assert pinned.option("kernel") == "off"
        # A method that does not accept the kernel option drops it.
        assert "kernel" not in session.request(method="exact").options
        assert session.count(parity_nfa_2, 4, method="exact").raw > 0


class TestMethodCapabilities:
    def test_defaults(self):
        capabilities = MethodCapabilities()
        assert capabilities.workers is False
        assert capabilities.progress is False
        assert capabilities.stores == ("dict",)
        assert capabilities.kernels is False

    @pytest.mark.parametrize(
        "knobs",
        [
            {"workers": 1},
            {"progress": "yes"},
            {"kernels": None},
            {"stores": ()},
            {"stores": ["dict"]},
            {"stores": ("paper",)},
        ],
    )
    def test_invalid_records_rejected(self, knobs):
        with pytest.raises(ParameterError):
            MethodCapabilities(**knobs)

    def test_registry_declares_capabilities(self):
        fpras = METHOD_REGISTRY["fpras"].capabilities
        assert fpras.workers and fpras.progress and fpras.kernels
        assert fpras.stores == ("dict", "windowed")
        exact = METHOD_REGISTRY["exact"].capabilities
        assert not exact.workers and not exact.kernels
        montecarlo = METHOD_REGISTRY["montecarlo"].capabilities
        assert montecarlo.workers and montecarlo.progress and not montecarlo.kernels

    def test_supports_workers_compat_property(self):
        assert METHOD_REGISTRY["fpras"].supports_workers is True
        assert METHOD_REGISTRY["exact"].supports_workers is False

    def test_legacy_registration_flag_maps_to_capabilities(self):
        name = "policy-test-legacy"
        try:
            with pytest.warns(DeprecationWarning, match="supports_workers"):

                @register_method(name, summary="legacy shim", supports_workers=True)
                def runner(nfa, length, request):  # pragma: no cover - never run
                    raise AssertionError

            assert METHOD_REGISTRY[name].capabilities.workers is True
        finally:
            METHOD_REGISTRY.pop(name, None)

    def test_legacy_flag_contradicting_capabilities_rejected(self):
        name = "policy-test-contradiction"
        try:
            with pytest.raises(ParameterError), warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)

                @register_method(
                    name,
                    summary="contradiction",
                    capabilities=MethodCapabilities(workers=False),
                    supports_workers=True,
                )
                def runner(nfa, length, request):  # pragma: no cover - never run
                    raise AssertionError

        finally:
            METHOD_REGISTRY.pop(name, None)


class TestEngineCapabilityRecords:
    def test_every_backend_declares_capabilities(self):
        records = available_backends(with_capabilities=True)
        assert set(records) == set(available_backends()) - {"auto"}
        for name, record in records.items():
            assert isinstance(record, EngineCapabilities)
            assert record.backend == name
            assert backend_capabilities(name) == record

    def test_declared_capabilities_match_engine_behaviour(self):
        nfa = families.parity_nfa(3)
        for name in ("reference", "bitset", "numpy"):
            engine = create_engine(nfa, name)
            record = engine.capabilities()
            assert record == backend_capabilities(name)
            assert (engine.level_kernel() is not None) == record.level_kernel

    def test_numpy_is_the_level_kernel_backend(self):
        assert backend_capabilities("numpy").level_kernel is True
        assert backend_capabilities("numpy").gpu_ready is True
        assert backend_capabilities("bitset").level_kernel is False
        assert backend_capabilities("reference").level_kernel is False
