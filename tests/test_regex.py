"""Unit tests for the regex parser and compiler."""

from __future__ import annotations

import pytest

from repro.automata.regex import (
    Alternation,
    AnySymbol,
    Concat,
    Epsilon,
    Literal,
    Maybe,
    Plus,
    Repeat,
    Star,
    SymbolClass,
    compile_regex,
    parse_regex,
)
from repro.errors import RegexSyntaxError


class TestParser:
    def test_single_literal(self):
        assert parse_regex("a") == Literal("a")

    def test_concatenation(self):
        node = parse_regex("ab")
        assert isinstance(node, Concat)
        assert node.parts == (Literal("a"), Literal("b"))

    def test_alternation(self):
        node = parse_regex("a|b")
        assert isinstance(node, Alternation)
        assert node.options == (Literal("a"), Literal("b"))

    def test_alternation_binds_looser_than_concat(self):
        node = parse_regex("ab|c")
        assert isinstance(node, Alternation)
        assert isinstance(node.options[0], Concat)

    def test_star(self):
        assert parse_regex("a*") == Star(Literal("a"))

    def test_plus_and_maybe(self):
        assert parse_regex("a+") == Plus(Literal("a"))
        assert parse_regex("a?") == Maybe(Literal("a"))

    def test_repetition_exact(self):
        assert parse_regex("a{3}") == Repeat(Literal("a"), 3, 3)

    def test_repetition_range(self):
        assert parse_regex("a{2,5}") == Repeat(Literal("a"), 2, 5)

    def test_grouping(self):
        node = parse_regex("(ab)*")
        assert isinstance(node, Star)
        assert isinstance(node.child, Concat)

    def test_character_class(self):
        assert parse_regex("[abc]") == SymbolClass(("a", "b", "c"))

    def test_character_class_deduplicates(self):
        assert parse_regex("[aab]") == SymbolClass(("a", "b"))

    def test_any_symbol(self):
        assert parse_regex(".") == AnySymbol()

    def test_escape(self):
        assert parse_regex(r"\*") == Literal("*")

    def test_empty_pattern_is_epsilon(self):
        assert parse_regex("") == Epsilon()

    def test_bracketed_symbol(self):
        assert parse_regex("<worksAt>") == Literal("worksAt")

    def test_bracketed_symbols_concatenate(self):
        node = parse_regex("<a><b>")
        assert node == Concat((Literal("a"), Literal("b")))

    @pytest.mark.parametrize(
        "pattern",
        ["(a", "a)", "a{2", "a{3,1}", "[", "[]", "a**b(", "<", "<>", "\\", "*a", "a{x}"],
    )
    def test_syntax_errors(self, pattern):
        with pytest.raises(RegexSyntaxError):
            parse_regex(pattern)

    def test_character_range(self):
        assert parse_regex("[a-d]") == SymbolClass(("a", "b", "c", "d"))

    def test_character_range_mixes_with_plain_members(self):
        assert parse_regex("[a-c0-1x]") == SymbolClass(("a", "b", "c", "0", "1", "x"))

    def test_dash_is_literal_at_class_edges(self):
        assert parse_regex("[a-]") == SymbolClass(("a", "-"))
        assert parse_regex("[-a]") == SymbolClass(("-", "a"))

    def test_negated_class(self):
        assert parse_regex("[^ab]") == SymbolClass(("a", "b"), negated=True)

    def test_negated_class_with_range(self):
        assert parse_regex("[^a-c]") == SymbolClass(("a", "b", "c"), negated=True)

    def test_caret_is_literal_when_not_first(self):
        assert parse_regex("[a^]") == SymbolClass(("a", "^"))

    def test_escaped_caret_first_is_literal(self):
        assert parse_regex(r"[\^a]") == SymbolClass(("^", "a"))

    @pytest.mark.parametrize(
        "pattern",
        ["[z-a]", "[5-2]", "[^]", "[a-", "[a-\\", "[^", "[<a>-<b>]"],
    )
    def test_malformed_range_and_negation_errors(self, pattern):
        with pytest.raises(RegexSyntaxError):
            parse_regex(pattern)


class TestCompile:
    @pytest.mark.parametrize(
        "pattern, accepted, rejected",
        [
            ("01", ["01"], ["0", "1", "10", "011"]),
            ("0*1", ["1", "01", "0001"], ["", "0", "10"]),
            ("(0|1)*11", ["11", "011", "1111"], ["", "1", "10"]),
            ("0+", ["0", "00", "000"], ["", "1", "01"]),
            ("0?1", ["1", "01"], ["", "0", "001"]),
            ("(01){2}", ["0101"], ["01", "010101"]),
            ("(01){1,2}", ["01", "0101"], ["", "010101"]),
            ("[01]1", ["01", "11"], ["10", "1"]),
            (".1", ["01", "11"], ["10", "1"]),
            ("", [""], ["0", "1"]),
        ],
    )
    def test_binary_patterns(self, pattern, accepted, rejected):
        nfa = compile_regex(pattern, alphabet=("0", "1"))
        for word in accepted:
            assert nfa.accepts(word), f"{pattern!r} should accept {word!r}"
        for word in rejected:
            assert not nfa.accepts(word), f"{pattern!r} should reject {word!r}"

    def test_alphabet_inferred_from_literals(self):
        nfa = compile_regex("ab*")
        assert set(nfa.alphabet) == {"a", "b"}

    def test_alphabet_defaults_to_binary_for_literal_free_patterns(self):
        nfa = compile_regex(".*")
        assert set(nfa.alphabet) == {"0", "1"}

    def test_explicit_alphabet_controls_dot(self):
        nfa = compile_regex(".", alphabet=("x", "y", "z"))
        for symbol in ("x", "y", "z"):
            assert nfa.accepts((symbol,))

    def test_multicharacter_labels(self):
        nfa = compile_regex("(<knows>)*<worksAt>", alphabet=("knows", "worksAt"))
        assert nfa.accepts(("worksAt",))
        assert nfa.accepts(("knows", "knows", "worksAt"))
        assert not nfa.accepts(("worksAt", "knows"))

    def test_compiled_nfa_is_epsilon_free_and_pruned(self):
        nfa = compile_regex("(0|1)*01")
        # Every state is reachable from the initial state.
        assert nfa.forward_reachable() == nfa.states

    def test_star_accepts_empty_word(self):
        nfa = compile_regex("(01)*")
        assert nfa.accepts("")
        assert nfa.accepts("0101")

    def test_nested_structure(self):
        nfa = compile_regex("((0|1)0){2}")
        assert nfa.accepts("0010")
        assert nfa.accepts("1000")
        assert not nfa.accepts("0001")

    def test_slice_counts_match_enumeration(self):
        # |L_n| of (0|1)*11 equals the number of binary words ending in 11.
        nfa = compile_regex("(0|1)*11")
        assert len(nfa.language_slice(5)) == 2**3

    def test_repeat_zero_lower_bound(self):
        nfa = compile_regex("a{0,2}", alphabet=("a",))
        assert nfa.accepts("")
        assert nfa.accepts("a")
        assert nfa.accepts("aa")
        assert not nfa.accepts("aaa")

    def test_range_class_compiles(self):
        nfa = compile_regex("[a-c]x", alphabet=("a", "b", "c", "d", "x"))
        for symbol in ("a", "b", "c"):
            assert nfa.accepts((symbol, "x"))
        assert not nfa.accepts(("d", "x"))

    def test_negated_class_complements_explicit_alphabet(self):
        nfa = compile_regex("[^ab]c", alphabet=("a", "b", "c", "d"))
        assert nfa.accepts(("c", "c"))
        assert nfa.accepts(("d", "c"))
        assert not nfa.accepts(("a", "c"))
        assert not nfa.accepts(("b", "c"))

    def test_negated_class_quoted_string_shape(self):
        nfa = compile_regex('"[^"]*"', alphabet=('"', "x", "y"))
        assert nfa.accepts(('"', "x", "y", '"'))
        assert nfa.accepts(('"', '"'))
        assert not nfa.accepts(('"', '"', '"'))

    def test_negated_class_requires_explicit_alphabet(self):
        with pytest.raises(RegexSyntaxError):
            compile_regex("[^ab]")

    def test_negated_class_must_leave_some_symbol(self):
        with pytest.raises(RegexSyntaxError):
            compile_regex("[^abc]", alphabet=("a", "b", "c"))

    @pytest.mark.parametrize("backend_blind_pattern, alphabet, length", [
        ("[a-c]+", ("a", "b", "c", "d"), 4),
        ("[^a]([a-d])*", ("a", "b", "c", "d"), 3),
        ("[0-9]{1,3}", tuple("0123456789"), 3),
    ])
    def test_range_and_negation_backend_parity(
        self, backend_blind_pattern, alphabet, length
    ):
        # The three simulation backends must agree bit-for-bit on automata
        # compiled from range/negation patterns (same estimate from the
        # same seed, same exact count).
        from repro.automata.engine import available_backends
        from repro.counting.api import count

        nfa = compile_regex(backend_blind_pattern, alphabet=alphabet)
        backends = [b for b in available_backends() if b != "auto"]
        exacts = set()
        estimates = set()
        for backend in backends:
            exacts.add(count(nfa, length, method="exact", backend=backend).estimate)
            estimates.add(
                count(
                    nfa, length, method="fpras", epsilon=0.5, delta=0.2,
                    seed=7, backend=backend,
                ).estimate
            )
        assert len(exacts) == 1
        assert len(estimates) == 1
