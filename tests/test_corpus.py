"""Tests for the real-workload corpus subsystem (:mod:`repro.corpus`).

Three layers of guarantees:

* **determinism** — every checked-in fixture round-trips through the
  serialization layer, rebuilds byte-identically from its in-code source,
  and carries the ``request_fingerprint`` a fresh computation reproduces;
* **integrity** — tampered or drifted fixtures are refused on load with
  :class:`~repro.errors.CorpusError`, and consistently-edited fixtures
  (body and digest rewritten together) are caught by ``verify`` against
  the source definitions;
* **integration** — corpus fixtures reach the family registry, the audit
  scenario matrix, ``repro audit`` manifests and the ``repro corpus`` CLI.
"""

from __future__ import annotations

import json

import pytest

from repro.audit import run_matrix, validate_manifest
from repro.audit.scenarios import expand_matrix
from repro.automata.families import build_family
from repro.automata.serialization import nfa_from_dict, nfa_to_dict
from repro.cli import main as cli_main
from repro.corpus import (
    CORPUS_MATRIX,
    CORPUS_REGISTRY,
    DEFAULT_MATRIX_IDS,
    PATTERNS,
    RPQ_QUERIES,
    build_fixture,
    corpus_dir,
    corpus_matrix_spec,
    corpus_stats,
    fixture_digest,
    fixture_path,
    load_corpus,
    load_fixture,
    load_fixture_nfa,
    verify_corpus,
    verify_fixture,
    write_fixture,
)
from repro.corpus.registry import PROBE_REQUEST
from repro.counting.api import count, request_fingerprint
from repro.errors import CorpusError

ALL_IDS = sorted(CORPUS_REGISTRY)


class TestRegistryShape:
    def test_registry_covers_patterns_and_rpq(self):
        assert set(CORPUS_REGISTRY) == {
            entry.corpus_id for entry in (*PATTERNS, *RPQ_QUERIES)
        }
        assert len(CORPUS_REGISTRY) >= 15

    def test_ids_are_stable_and_namespaced(self):
        for corpus_id in ALL_IDS:
            area = corpus_id.split(".")[0]
            assert area in {"log", "lint", "valid", "rpq"}

    def test_every_entry_has_attribution_and_lengths(self):
        for entry in CORPUS_REGISTRY.values():
            assert entry.source["name"]
            assert entry.source["url"].startswith("http")
            assert entry.lengths and all(n > 0 for n in entry.lengths)

    def test_every_fixture_file_is_checked_in(self):
        for corpus_id in ALL_IDS:
            path = fixture_path(corpus_id)
            with open(path, "r", encoding="utf-8") as handle:
                assert json.load(handle)["id"] == corpus_id


class TestFixtureDeterminism:
    @pytest.mark.parametrize("corpus_id", ALL_IDS)
    def test_fixture_round_trips_and_matches_digest(self, corpus_id):
        fixture = load_fixture(corpus_id)
        document = nfa_to_dict(fixture.nfa)
        assert nfa_from_dict(document) == fixture.nfa
        rebuilt = build_fixture(CORPUS_REGISTRY[corpus_id])
        assert rebuilt["digest"] == fixture.digest
        assert rebuilt["automaton"] == document

    @pytest.mark.parametrize("corpus_id", ALL_IDS)
    def test_fingerprint_matches_checked_in_value(self, corpus_id):
        fixture = load_fixture(corpus_id)
        recomputed = request_fingerprint(
            nfa_to_dict(fixture.nfa), fixture.lengths[0], PROBE_REQUEST
        )
        assert recomputed == fixture.fingerprint

    def test_build_is_deterministic(self):
        entry = CORPUS_REGISTRY["log.http_status"]
        assert build_fixture(entry) == build_fixture(entry)

    def test_verify_corpus_passes_on_checked_in_fixtures(self):
        digests = verify_corpus()
        assert set(digests) == set(ALL_IDS)
        assert all(len(d) == 64 for d in digests.values())


class TestIntegrity:
    def _write_tampered(self, tmp_path, corpus_id, mutate):
        path = fixture_path(corpus_id)
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
        mutate(document)
        out = tmp_path / f"{corpus_id}.json"
        out.write_text(json.dumps(document))
        return str(tmp_path)

    def test_tampered_automaton_is_rejected(self, tmp_path):
        def mutate(document):
            document["automaton"]["accepting"] = []

        directory = self._write_tampered(tmp_path, "log.http_status", mutate)
        with pytest.raises(CorpusError, match="integrity"):
            load_fixture("log.http_status", directory)

    def test_tampered_metadata_is_rejected(self, tmp_path):
        def mutate(document):
            document["lengths"] = [99]

        directory = self._write_tampered(tmp_path, "valid.hex_color", mutate)
        with pytest.raises(CorpusError, match="drifted"):
            load_fixture("valid.hex_color", directory)

    def test_consistent_edit_passes_load_but_fails_verify(self, tmp_path):
        def mutate(document):
            document["description"] = "edited"
            document["digest"] = fixture_digest(document)

        directory = self._write_tampered(tmp_path, "lint.semver", mutate)
        assert load_fixture("lint.semver", directory).description == "edited"
        with pytest.raises(CorpusError, match="source"):
            verify_fixture("lint.semver", directory)

    def test_missing_file_names_the_build_command(self, tmp_path):
        with pytest.raises(CorpusError, match="repro corpus build"):
            load_fixture("valid.uuid", str(tmp_path))

    def test_unknown_id_is_rejected(self):
        with pytest.raises(CorpusError, match="unknown"):
            load_fixture("no.such.fixture")

    def test_wrong_format_tag_is_rejected(self, tmp_path):
        def mutate(document):
            document["format"] = "something-else"

        directory = self._write_tampered(tmp_path, "log.loglevel", mutate)
        with pytest.raises(CorpusError, match="format|document"):
            load_fixture("log.loglevel", directory)

    def test_write_fixture_regenerates_byte_identical_files(self, tmp_path):
        entry = CORPUS_REGISTRY["rpq.citation.contested"]
        path = write_fixture(entry, str(tmp_path))
        with open(path, "r", encoding="utf-8") as rebuilt:
            with open(fixture_path(entry.corpus_id), "r", encoding="utf-8") as checked:
                assert rebuilt.read() == checked.read()


class TestCounting:
    def test_fixture_nfa_counts_with_exact_ground_truth(self):
        fixture = load_fixture("log.http_status")
        exact = count(fixture.nfa, 3, method="exact").raw
        assert exact == 5 * 10 * 10  # [1-5] x [0-9] x [0-9]

    def test_corpus_family_builder(self):
        nfa = build_family("corpus", fixture="valid.hex_color")
        assert nfa == load_fixture_nfa("valid.hex_color")
        assert count(nfa, 7, method="exact").raw == 16**6

    def test_rpq_fixture_counts_label_sequences(self):
        nfa = load_fixture_nfa("rpq.citation.contested")
        # Paths of 4 hops with exactly one <refutes>: 4 positions.
        assert count(nfa, 4, method="exact").raw == 4


class TestMatrixIntegration:
    def test_corpus_matrix_expands_to_at_least_eight_scenarios(self):
        scenarios = expand_matrix(CORPUS_MATRIX)
        assert len(scenarios) >= 8
        assert {s.family for s in scenarios} == {"corpus"}
        fixtures = {s.family_args["fixture"] for s in scenarios}
        assert fixtures == set(DEFAULT_MATRIX_IDS)

    def test_matrix_spec_respects_arguments(self):
        spec = corpus_matrix_spec(
            ids=("valid.uuid",), seeds=(7,), lengths_per_fixture=2
        )
        scenarios = expand_matrix(spec)
        assert [s.length for s in scenarios] == [36]  # uuid suggests one length
        assert scenarios[0].seed == 7

    def test_matrix_spec_rejects_unknown_ids(self):
        with pytest.raises(CorpusError):
            corpus_matrix_spec(ids=("nope",))

    def test_corpus_manifest_has_ground_truth_everywhere(self):
        spec = corpus_matrix_spec(
            ids=("log.http_status", "rpq.social.coworker_reach"), seeds=(5,)
        )
        manifest = run_matrix(spec)
        validate_manifest(manifest)
        for record in manifest["scenarios"]:
            assert record["exact"] is not None
            assert record["spec"]["family"] == "corpus"

    def test_stats_rows_cover_requested_ids(self):
        rows = corpus_stats(None, ["log.ipv4", "valid.email"])
        assert [row["id"] for row in rows] == ["log.ipv4", "valid.email"]
        assert all(row["states"] > 0 for row in rows)


class TestCorpusCLI:
    def test_list_mentions_every_fixture(self, capsys):
        assert cli_main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        for corpus_id in ALL_IDS:
            assert corpus_id in out

    def test_verify_reports_ok(self, capsys):
        assert cli_main(["corpus", "verify", "--id", "log.loglevel"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_build_then_verify_in_fresh_directory(self, tmp_path, capsys):
        directory = str(tmp_path / "fixtures")
        assert cli_main(["corpus", "build", "--dir", directory]) == 0
        assert cli_main(["corpus", "verify", "--dir", directory]) == 0
        assert "verified" in capsys.readouterr().out
        assert len(load_corpus(directory)) == len(CORPUS_REGISTRY)

    def test_stats_prints_a_table(self, capsys):
        assert cli_main(["corpus", "stats", "--id", "valid.uuid"]) == 0
        out = capsys.readouterr().out
        assert "valid.uuid" in out and "states" in out

    def test_unknown_id_exits_with_error(self, capsys):
        assert cli_main(["corpus", "verify", "--id", "bogus"]) == 2
        assert "unknown corpus id" in capsys.readouterr().err

    def test_verify_fails_on_drifted_directory(self, tmp_path, capsys):
        with open(fixture_path("lint.identifier"), "r", encoding="utf-8") as handle:
            document = json.load(handle)
        document["tags"] = ["drifted"]
        document["digest"] = fixture_digest(document)
        (tmp_path / "lint.identifier.json").write_text(json.dumps(document))
        exit_code = cli_main(
            ["corpus", "verify", "--id", "lint.identifier", "--dir", str(tmp_path)]
        )
        assert exit_code == 2
        assert "source" in capsys.readouterr().err

    def test_audit_accepts_builtin_corpus_matrix(self, tmp_path, capsys):
        out_path = tmp_path / "corpus-manifest.json"
        exit_code = cli_main(
            ["audit", "--matrix", "corpus", "--output", str(out_path)]
        )
        assert exit_code == 0
        with open(out_path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
        validate_manifest(manifest)
        assert manifest["summary"]["scenario_count"] >= 8
        assert cli_main(
            ["audit-diff", str(out_path), str(out_path)]
        ) == 0

    def test_corpus_dir_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CORPUS_DIR", str(tmp_path))
        assert corpus_dir() == str(tmp_path)
