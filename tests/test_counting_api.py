"""Tests for the unified counting façade (:mod:`repro.counting.api`).

Three families of checks:

* **differential parity** — ``repro.count(..., method=X)`` must be
  bit-identical (estimate, RNG stream, work counters) to each legacy entry
  point and to direct construction of the underlying counter classes under
  a shared seed;
* **error paths** — unknown methods, invalid :class:`CountRequest` fields
  and unknown per-method options are rejected with typed errors;
* **façade behaviour** — :class:`CountingSession` pinning, engine reuse
  through the shared registry, report history, the sampler entry point and
  the CLI's ``--method`` flag.
"""

from __future__ import annotations

import random

import pytest

import repro
from repro.automata.exact import count_exact
from repro.automata.families import no_consecutive_ones_nfa, substring_nfa
from repro.cli import main
from repro.counting.acjr import ACJRCounter, ACJRParameters, count_nfa_acjr
from repro.counting.api import (
    METHOD_REGISTRY,
    CountingSession,
    CountReport,
    CountRequest,
    available_methods,
    count,
    dispatch,
    register_method,
    resolve_method,
)
from repro.counting.bruteforce import count_bruteforce
from repro.counting.fpras import FPRASParameters, NFACounter, count_nfa
from repro.counting.montecarlo import count_montecarlo
from repro.counting.params import ParameterScale
from repro.counting.uniform import UniformWordSampler
from repro.errors import CountingMethodError, ParameterError, ReproError

SEED = 7


@pytest.fixture
def nfa():
    return substring_nfa("101")


# ----------------------------------------------------------------------
# Differential parity: façade vs legacy entry points vs direct classes
# ----------------------------------------------------------------------
class TestFprasParity:
    def test_shim_returns_identical_count_result(self, nfa):
        legacy = count_nfa(nfa, 8, epsilon=0.5, delta=0.2, seed=SEED)
        report = count(nfa, 8, method="fpras", epsilon=0.5, delta=0.2, seed=SEED)
        assert type(report.raw) is type(legacy)
        assert report.estimate == legacy.estimate
        assert report.raw.union_calls == legacy.union_calls
        assert report.raw.membership_calls == legacy.membership_calls
        assert report.raw.sample_draws == legacy.sample_draws
        assert report.raw.sample_successes == legacy.sample_successes
        assert report.raw.state_estimates == legacy.state_estimates
        assert report.backend == legacy.backend

    def test_rng_stream_identical_to_direct_counter(self, nfa):
        direct_rng, api_rng = random.Random(SEED), random.Random(SEED)
        direct = NFACounter(
            nfa, 8, FPRASParameters(epsilon=0.5, delta=0.2), rng=direct_rng
        ).run()
        report = count(nfa, 8, method="fpras", epsilon=0.5, delta=0.2, seed=api_rng)
        assert direct_rng.getstate() == api_rng.getstate()
        assert report.estimate == direct.estimate
        assert report.raw.sample_draws == direct.sample_draws

    def test_locked_work_counters_through_facade(self, nfa):
        # The same fixed instance/seed as tests/test_work_counters.py: the
        # façade must reproduce the locked accounting exactly.
        report = count(
            nfa,
            8,
            method="fpras",
            epsilon=0.5,
            delta=0.2,
            seed=SEED,
            scale=ParameterScale.practical(sample_cap=10, union_trial_cap=12),
        )
        assert report.estimate == 149.76388888888889
        assert report.raw.union_calls == 240
        assert report.raw.membership_calls == 446
        assert report.raw.sample_draws == 1134
        assert report.details["ns"] == 10
        assert report.details["xns"] == 60

    def test_report_normalisation(self, nfa):
        report = count(nfa, 6, method="fpras", epsilon=0.4, seed=1)
        assert report.method == "fpras"
        assert report.length == 6 and report.num_states == nfa.num_states
        assert report.epsilon == 0.4 and report.delta == 0.1
        assert not report.exact
        lower, upper = report.error_bounds()
        assert lower == pytest.approx(report.estimate / 1.4)
        assert upper == pytest.approx(report.estimate * 1.4)
        assert "step_ops" in report.engine_counters
        assert report.elapsed_seconds > 0


class TestACJRParity:
    def test_shim_returns_identical_result(self, nfa):
        legacy = count_nfa_acjr(nfa, 6, epsilon=0.4, sample_cap=32, seed=2)
        report = count(
            nfa, 6, method="acjr", epsilon=0.4, seed=2, sample_cap=32
        )
        assert report.estimate == legacy.estimate
        assert report.raw.membership_calls == legacy.membership_calls
        assert report.raw.sample_draws == legacy.sample_draws
        assert report.raw.state_estimates == legacy.state_estimates

    def test_rng_stream_identical_to_direct_counter(self, nfa):
        direct_rng, api_rng = random.Random(SEED), random.Random(SEED)
        direct = ACJRCounter(
            nfa, 6, ACJRParameters(epsilon=0.4), rng=direct_rng
        ).run()
        report = count(nfa, 6, method="acjr", epsilon=0.4, seed=api_rng)
        assert direct_rng.getstate() == api_rng.getstate()
        assert report.estimate == direct.estimate

    def test_engine_counters_and_guarantee_fields(self, nfa):
        report = count(nfa, 6, method="acjr", epsilon=0.4, seed=2)
        assert report.epsilon == 0.4
        assert "simulated_steps" in report.engine_counters
        assert report.backend in ("bitset", "reference")


class TestMonteCarloParity:
    def test_shim_returns_identical_estimate(self, nfa):
        legacy = count_montecarlo(nfa, 8, num_samples=400, seed=3)
        report = count(nfa, 8, method="montecarlo", seed=3, num_samples=400)
        assert report.raw == legacy  # frozen dataclass equality: all fields
        assert report.details["hits"] == legacy.hits
        assert report.details["total_words"] == legacy.total_words

    def test_rng_stream_identical(self, nfa):
        legacy_rng, api_rng = random.Random(SEED), random.Random(SEED)
        legacy = count_montecarlo(nfa, 8, num_samples=300, seed=legacy_rng)
        report = count(nfa, 8, method="montecarlo", seed=api_rng, num_samples=300)
        assert legacy_rng.getstate() == api_rng.getstate()
        assert report.estimate == legacy.estimate

    def test_no_guarantee_fields(self, nfa):
        report = count(nfa, 6, method="montecarlo", seed=1, num_samples=50)
        assert report.epsilon is None and report.delta is None
        assert report.error_bounds() is None
        assert report.within_guarantee(count_exact(nfa, 6)) is None


class TestBruteForceParity:
    def test_shim_still_returns_bare_int(self, nfa):
        value = count_bruteforce(nfa, 7)
        assert isinstance(value, int)
        assert value == count_exact(nfa, 7)

    def test_report_is_structured(self, nfa):
        report = count(nfa, 7, method="bruteforce", limit=1000)
        assert report.exact
        assert report.raw == count_exact(nfa, 7)
        assert report.details["limit"] == 1000
        assert report.details["total_words"] == 2**7
        assert "step_ops" in report.engine_counters
        assert report.error_bounds() == (report.estimate, report.estimate)

    def test_limit_error_propagates_through_shim_and_facade(self, nfa):
        with pytest.raises(ParameterError):
            count_bruteforce(nfa, 30, limit=1000)
        with pytest.raises(ParameterError):
            count(nfa, 30, method="bruteforce", limit=1000)

    def test_limit_none_disables_check(self, nfa):
        assert count_bruteforce(nfa, 4, limit=None) == count_exact(nfa, 4)
        assert count(nfa, 4, method="bruteforce", limit=None).raw == count_exact(nfa, 4)


class TestExactMethod:
    def test_exact_report(self, nfa):
        report = count(nfa, 9, method="exact")
        assert report.raw == count_exact(nfa, 9)
        assert report.estimate == float(report.raw)
        assert report.exact and report.backend is None
        assert report.engine_counters == {}
        assert report.within_guarantee(report.raw) is True
        assert report.within_guarantee(report.raw + 1) is False


# ----------------------------------------------------------------------
# Error paths
# ----------------------------------------------------------------------
class TestErrorPaths:
    def test_unknown_method(self, nfa):
        with pytest.raises(CountingMethodError) as excinfo:
            count(nfa, 4, method="quantum")
        assert "quantum" in str(excinfo.value)
        # The error is both a ValueError (historical contract) and a
        # ReproError (library-wide catch-all).
        assert isinstance(excinfo.value, ValueError)
        assert isinstance(excinfo.value, ReproError)

    def test_resolve_method_unknown(self):
        with pytest.raises(CountingMethodError):
            resolve_method("nope")

    def test_unknown_option_rejected(self, nfa):
        with pytest.raises(CountingMethodError) as excinfo:
            count(nfa, 4, method="exact", num_samples=10)
        assert "num_samples" in str(excinfo.value)

    def test_option_for_wrong_method_rejected(self, nfa):
        with pytest.raises(CountingMethodError):
            count(nfa, 4, method="fpras", limit=10)

    @pytest.mark.parametrize(
        "fields",
        [
            {"epsilon": 0.0},
            {"epsilon": -1.0},
            {"delta": 0.0},
            {"delta": 1.0},
            {"seed": "not-a-seed"},
            {"backend": "no_such_backend"},
            {"use_engine_cache": "yes"},
            {"method": ""},
            {"method": 42},
            {"options": 17},
            {"options": {3: "x"}},
        ],
    )
    def test_invalid_request_fields(self, fields):
        with pytest.raises(ParameterError):
            CountRequest(**fields)

    def test_request_defaults_are_valid(self):
        request = CountRequest()
        assert request.method == "fpras"
        assert request.options == {}
        assert request.integer_seed() is None

    def test_duplicate_registration_rejected(self):
        with pytest.raises(CountingMethodError):
            register_method("fpras", summary="dup")(lambda nfa, n, req: None)

    def test_sampler_requires_fpras_request(self, nfa):
        request = CountRequest(method="exact")
        with pytest.raises(ParameterError):
            UniformWordSampler.from_request(nfa, 6, request)


# ----------------------------------------------------------------------
# Registry extensibility
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_five_methods_registered(self):
        assert available_methods() == (
            "acjr",
            "bruteforce",
            "exact",
            "fpras",
            "montecarlo",
        )

    def test_methods_carry_metadata(self):
        for name in available_methods():
            method = METHOD_REGISTRY[name]
            assert method.name == name
            assert method.summary
            assert isinstance(method.option_names, frozenset)

    def test_custom_method_pluggable(self, nfa):
        @register_method("always42", summary="test stub", options=("offset",))
        def _run(nfa_, length, request):
            offset = request.option("offset", 0)
            return CountReport(
                estimate=42.0 + offset,
                method="always42",
                length=length,
                num_states=nfa_.num_states,
                elapsed_seconds=0.0,
            )

        try:
            assert count(nfa, 3, method="always42").estimate == 42.0
            assert count(nfa, 3, method="always42", offset=8).estimate == 50.0
            session = CountingSession(method="always42")
            assert session.count(nfa, 3).estimate == 42.0
        finally:
            del METHOD_REGISTRY["always42"]

    def test_dispatch_accepts_prebuilt_request(self, nfa):
        request = CountRequest(method="exact")
        report = dispatch(nfa, 5, request)
        assert report.raw == count_exact(nfa, 5)


# ----------------------------------------------------------------------
# CountingSession façade
# ----------------------------------------------------------------------
class TestCountingSession:
    def test_pinned_seed_is_repeatable(self, nfa):
        session = CountingSession(epsilon=0.5, delta=0.2, seed=SEED)
        first = session.count(nfa, 8)
        second = session.count(nfa, 8)
        assert first.estimate == second.estimate
        assert first.raw.sample_draws == second.raw.sample_draws

    def test_session_matches_one_shot_count(self, nfa):
        session = CountingSession(epsilon=0.5, delta=0.2, seed=SEED)
        assert (
            session.count(nfa, 8).estimate
            == count(nfa, 8, method="fpras", epsilon=0.5, delta=0.2, seed=SEED).estimate
        )

    def test_repeated_calls_reuse_engine(self, nfa):
        session = CountingSession(epsilon=0.5, seed=1)
        session.count(nfa, 6)
        second = session.count(nfa, 6)
        assert second.engine_counters["engine_cache_hit"] == 1

    def test_no_engine_cache_opts_out(self, nfa):
        session = CountingSession(epsilon=0.5, seed=1, use_engine_cache=False)
        session.count(nfa, 6)
        second = session.count(nfa, 6)
        assert second.engine_counters["engine_cache_hit"] == 0

    def test_reports_history_and_last(self, nfa):
        session = CountingSession(seed=1)
        assert session.last_report is None
        session.count(nfa, 5)
        session.count(nfa, 5, method="exact")
        assert len(session.reports) == 2
        assert session.last_report.method == "exact"

    def test_per_call_overrides(self, nfa):
        session = CountingSession(epsilon=0.5, seed=1)
        report = session.count(nfa, 5, epsilon=0.25)
        assert report.epsilon == 0.25
        # The pinned default is untouched.
        assert session.defaults.epsilon == 0.5

    def test_session_options_filtered_per_method(self, nfa):
        # A session pinned with an fpras-only option can still run exact.
        session = CountingSession(
            seed=1, scale=ParameterScale.practical(sample_cap=8)
        )
        assert session.count(nfa, 5, method="exact").raw == count_exact(nfa, 5)
        assert session.count(nfa, 5).details["ns"] <= 8

    def test_per_call_unknown_option_still_rejected(self, nfa):
        session = CountingSession(seed=1)
        with pytest.raises(CountingMethodError):
            session.count(nfa, 5, method="exact", limit=3)

    def test_pinned_option_typo_rejected_at_construction(self):
        # A misspelled (or wrong-method) pinned option must fail loudly at
        # construction, not be silently dropped by the per-method filter.
        with pytest.raises(CountingMethodError):
            CountingSession(method="montecarlo", nun_samples=17)
        with pytest.raises(CountingMethodError):
            CountingSession(num_samples=17)  # not an fpras option

    def test_unknown_method_at_request_time(self, nfa):
        session = CountingSession(seed=1)
        with pytest.raises(CountingMethodError):
            session.request("bogus")

    def test_every_method_invocable_through_session(self, nfa):
        session = CountingSession(epsilon=0.5, seed=2)
        exact = count_exact(nfa, 6)
        for method in available_methods():
            report = session.count(nfa, 6, method=method)
            assert report.method == method
            assert report.estimate >= 0
            if report.exact:
                assert report.raw == exact

    def test_sampler_through_session(self):
        nfa = no_consecutive_ones_nfa()
        session = CountingSession(epsilon=0.4, seed=3)
        sampler = session.sampler(nfa, 8)
        words = sampler.sample_many(4)
        assert len(words) == 4
        for word in words:
            assert len(word) == 8
            assert ("1", "1") not in tuple(zip(word, word[1:]))

    def test_sampler_matches_direct_construction(self):
        nfa = no_consecutive_ones_nfa()
        direct = UniformWordSampler(
            NFACounter(nfa, 8, FPRASParameters(epsilon=0.4, delta=0.1, seed=3))
        )
        session = CountingSession(epsilon=0.4, seed=3)
        facade = session.sampler(nfa, 8)
        assert direct.sample_many(5) == facade.sample_many(5)

    def test_describe(self, nfa):
        session = CountingSession(epsilon=0.3, seed=9, backend="reference")
        session.count(nfa, 4, method="exact")
        description = session.describe()
        assert description["epsilon"] == 0.3
        assert description["backend"] == "reference"
        assert description["calls"] == 1


# ----------------------------------------------------------------------
# Top-level exports and CLI integration
# ----------------------------------------------------------------------
class TestTopLevelSurface:
    def test_repro_count_is_the_facade(self, nfa):
        report = repro.count(nfa, 5, method="exact")
        assert isinstance(report, CountReport)
        assert report.raw == count_exact(nfa, 5)

    def test_public_exports(self):
        for name in (
            "count",
            "CountingSession",
            "CountRequest",
            "CountReport",
            "available_methods",
            "register_method",
        ):
            assert hasattr(repro, name)


class TestCLIMethodFlag:
    @pytest.mark.parametrize("method", ["fpras", "acjr", "montecarlo", "bruteforce", "exact"])
    def test_count_with_each_method(self, method, capsys):
        assert (
            main(
                ["count", "parity", "-n", "5", "--method", method, "--seed", "1"]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert method in output

    def test_method_with_compare(self, capsys):
        assert (
            main(
                [
                    "count",
                    "no_consecutive_ones",
                    "-n",
                    "6",
                    "--method",
                    "montecarlo",
                    "--compare",
                    "--seed",
                    "3",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "montecarlo" in output and "exact" in output and "rel_error" in output

    def test_unknown_method_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["count", "parity", "--method", "quantum"])

    def test_methods_subcommand(self, capsys):
        assert main(["methods"]) == 0
        output = capsys.readouterr().out
        for method in available_methods():
            assert method in output

    def test_shared_parent_parser_defaults(self):
        from repro.cli import build_parser

        parser = build_parser()
        count_args = parser.parse_args(["count", "parity"])
        sample_args = parser.parse_args(["sample", "parity"])
        # The shared block exists on both; only the epsilon default differs.
        assert count_args.epsilon == 0.3
        assert sample_args.epsilon == 0.4
        for namespace in (count_args, sample_args):
            assert namespace.delta == 0.1
            assert namespace.seed is None
            assert namespace.no_engine_cache is False
            assert namespace.backend == "bitset"

    def test_per_method_option_flags(self, capsys):
        assert (
            main(
                [
                    "count",
                    "parity",
                    "-n",
                    "5",
                    "--method",
                    "montecarlo",
                    "--num-samples",
                    "123",
                    "--seed",
                    "1",
                ]
            )
            == 0
        )
        assert "123" in capsys.readouterr().out

    def test_bruteforce_limit_flag(self, capsys):
        # Over the limit: a one-line error with exit code 2, no traceback.
        assert (
            main(["count", "parity", "-n", "8", "--method", "bruteforce", "--limit", "10"])
            == 2
        )
        assert "brute force" in capsys.readouterr().err
        # Raised limit: succeeds.
        assert (
            main(["count", "parity", "-n", "8", "--method", "bruteforce", "--limit", "500"])
            == 0
        )
        # 0 disables the safety valve entirely.
        assert (
            main(["count", "parity", "-n", "8", "--method", "bruteforce", "--limit", "0"])
            == 0
        )

    def test_option_for_wrong_method_is_clean_error(self, capsys):
        assert (
            main(["count", "parity", "-n", "5", "--num-samples", "10", "--seed", "1"])
            == 2
        )
        assert "num_samples" in capsys.readouterr().err

    def test_compare_with_exact_method_runs_dp_once(self, capsys):
        assert (
            main(["count", "parity", "-n", "6", "--method", "exact", "--compare"]) == 0
        )
        output = capsys.readouterr().out
        # Exactly one table row for the exact method (the DP ran once and
        # its report was reused), plus the run-details block.
        table_rows = [
            line for line in output.splitlines() if line.startswith("exact")
        ]
        assert len(table_rows) == 1
        assert "run details" in output

    def test_backend_flag_still_threaded(self, capsys):
        assert (
            main(
                [
                    "count",
                    "parity",
                    "-n",
                    "5",
                    "--seed",
                    "1",
                    "--backend",
                    "reference",
                    "--no-engine-cache",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "reference" in output


# ----------------------------------------------------------------------
# Report serialization (the serving layer's wire format)
# ----------------------------------------------------------------------
class TestReportSerialization:
    SCALE = ParameterScale.practical(sample_cap=8, union_trial_cap=10)

    def _report(self, method, **options):
        return count(
            no_consecutive_ones_nfa(),
            6,
            method=method,
            epsilon=0.5,
            seed=SEED,
            **options,
        )

    @pytest.mark.parametrize(
        "method, options",
        [
            ("fpras", {"scale": ParameterScale.practical(sample_cap=8,
                                                         union_trial_cap=10)}),
            ("acjr", {"sample_cap": 16}),
            ("montecarlo", {"num_samples": 64}),
            ("bruteforce", {}),
            ("exact", {}),
        ],
    )
    def test_round_trip_is_lossless_for_every_method(self, method, options):
        report = self._report(method, **options)
        restored = CountReport.from_dict(report.to_dict())
        assert restored == report
        assert restored.error_bounds() == report.error_bounds()

    def test_to_dict_is_json_serializable(self):
        import json

        report = self._report("fpras", scale=self.SCALE)
        wire = json.dumps(report.to_dict())
        revived = CountReport.from_dict(json.loads(wire))
        # Bit-identical through JSON: repr-round-trip floats, exact ints.
        assert revived.estimate == report.estimate
        assert revived.raw.state_estimates == report.raw.state_estimates
        assert revived.engine_counters == report.engine_counters

    def test_montecarlo_raw_survives_json(self):
        import json

        report = self._report("montecarlo", num_samples=64)
        revived = CountReport.from_dict(json.loads(json.dumps(report.to_dict())))
        assert revived.raw == report.raw

    def test_exact_raw_is_a_plain_int(self):
        report = self._report("exact")
        document = report.to_dict()
        assert document["raw"] == {"kind": "int", "value": 21}
        assert CountReport.from_dict(document).raw == 21

    def test_from_dict_rejects_garbage(self):
        with pytest.raises(CountingMethodError):
            CountReport.from_dict("not a mapping")
        with pytest.raises(CountingMethodError):
            CountReport.from_dict({"schema": 999})
        report = self._report("exact")
        document = report.to_dict()
        del document["estimate"]
        with pytest.raises(CountingMethodError):
            CountReport.from_dict(document)

    def test_from_dict_rejects_unknown_raw_kind(self):
        document = self._report("exact").to_dict()
        document["raw"] = {"kind": "hologram"}
        with pytest.raises(CountingMethodError):
            CountReport.from_dict(document)

    def test_extra_keys_are_ignored(self):
        """The server adds a 'served' envelope; from_dict must not care."""
        document = self._report("exact").to_dict()
        document["served"] = {"cached": True, "fingerprint": "abc"}
        assert CountReport.from_dict(document).estimate == 21.0


# ----------------------------------------------------------------------
# Request canonicalisation / fingerprints (the cache key)
# ----------------------------------------------------------------------
class TestRequestFingerprint:
    def _document(self):
        from repro.automata.serialization import nfa_to_dict

        return nfa_to_dict(no_consecutive_ones_nfa())

    def test_stable_across_calls(self):
        from repro.counting.api import request_fingerprint

        request = CountRequest(method="fpras", epsilon=0.5, seed=3)
        first = request_fingerprint(self._document(), 6, request)
        second = request_fingerprint(self._document(), 6, request)
        assert first == second
        assert len(first) == 64  # sha256 hexdigest

    @pytest.mark.parametrize(
        "base, variant",
        [
            (
                CountRequest(method="fpras", seed=3),
                CountRequest(method="montecarlo", seed=3),
            ),
            (
                CountRequest(epsilon=0.5, seed=3),
                CountRequest(epsilon=0.4, seed=3),
            ),
            (
                CountRequest(delta=0.1, seed=3),
                CountRequest(delta=0.2, seed=3),
            ),
            (CountRequest(seed=3), CountRequest(seed=4)),
            (
                CountRequest(seed=3),
                CountRequest(seed=3, backend="reference"),
            ),
            (
                CountRequest(seed=3),
                CountRequest(seed=3, options={"shards": 2}),
            ),
        ],
        ids=["method", "epsilon", "delta", "seed", "backend", "shards"],
    )
    def test_every_estimate_affecting_knob_is_in_the_key(self, base, variant):
        from repro.counting.api import request_fingerprint

        document = self._document()
        assert request_fingerprint(document, 6, base) != request_fingerprint(
            document, 6, variant
        )

    def test_length_is_in_the_key(self):
        from repro.counting.api import request_fingerprint

        request = CountRequest(seed=3)
        document = self._document()
        assert request_fingerprint(document, 6, request) != request_fingerprint(
            document, 7, request
        )

    def test_workers_and_engine_cache_are_not_in_the_key(self):
        """Worker-invariant estimates mean one cache line serves every k."""
        from repro.counting.api import request_fingerprint

        document = self._document()
        base = request_fingerprint(document, 6, CountRequest(seed=3))
        for variant in (
            CountRequest(seed=3, workers=4),
            CountRequest(seed=3, use_engine_cache=False),
        ):
            assert request_fingerprint(document, 6, variant) == base

    def test_automaton_is_in_the_key(self):
        from repro.automata.serialization import nfa_to_dict
        from repro.counting.api import request_fingerprint

        request = CountRequest(seed=3)
        other = nfa_to_dict(substring_nfa("101"))
        assert request_fingerprint(self._document(), 6, request) != (
            request_fingerprint(other, 6, request)
        )

    def test_seedless_and_stream_seeded_requests_are_uncacheable(self):
        from repro.counting.api import request_fingerprint

        document = self._document()
        assert request_fingerprint(document, 6, CountRequest()) is None
        stream_seeded = CountRequest(seed=random.Random(1))
        assert request_fingerprint(document, 6, stream_seeded) is None

    def test_non_json_options_are_uncacheable(self):
        from repro.counting.api import request_fingerprint

        request = CountRequest(
            method="fpras", seed=3, options={"scale": ParameterScale.practical()}
        )
        assert request_fingerprint(self._document(), 6, request) is None

    def test_canonical_knobs_reject_stream_seeds(self):
        from repro.counting.api import canonical_request_knobs

        with pytest.raises(CountingMethodError):
            canonical_request_knobs(CountRequest(seed=random.Random(1)), 6)


# ----------------------------------------------------------------------
# Anytime progress (count_with_progress)
# ----------------------------------------------------------------------
class TestCountWithProgress:
    SCALE = ParameterScale.practical(sample_cap=8, union_trial_cap=10)

    def test_fpras_progress_levels_and_identical_estimate(self):
        from repro.counting.api import count_with_progress

        nfa = no_consecutive_ones_nfa()
        request = CountRequest(
            method="fpras", epsilon=0.5, seed=SEED, options={"scale": self.SCALE}
        )
        events = []
        streamed = count_with_progress(nfa, 6, request, events.append)
        direct = dispatch(nfa, 6, request)
        assert streamed.estimate == direct.estimate
        assert [e["level"] for e in events] == list(range(1, 7))
        assert all(e["method"] == "fpras" for e in events)

    def test_montecarlo_progress_waves_and_identical_estimate(self):
        from repro.counting.api import count_with_progress

        nfa = no_consecutive_ones_nfa()
        request = CountRequest(
            method="montecarlo", seed=SEED, options={"num_samples": 100}
        )
        events = []
        streamed = count_with_progress(nfa, 6, request, events.append)
        direct = dispatch(nfa, 6, request)
        assert streamed.estimate == direct.estimate
        assert events and events[-1]["samples"] == 100
        assert all(e["method"] == "montecarlo" for e in events)

    def test_unsupported_method_rejected(self):
        from repro.counting.api import count_with_progress

        with pytest.raises(CountingMethodError) as excinfo:
            count_with_progress(
                no_consecutive_ones_nfa(), 6, CountRequest(method="exact"), print
            )
        assert "progress" in str(excinfo.value)

    def test_unknown_options_still_rejected(self):
        from repro.counting.api import count_with_progress

        with pytest.raises(CountingMethodError):
            count_with_progress(
                no_consecutive_ones_nfa(),
                6,
                CountRequest(method="fpras", options={"bogus": 1}),
                print,
            )
