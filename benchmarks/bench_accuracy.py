"""E2 — accuracy of the FPRAS against exact ground truth (Theorem 3).

For every structured family in the accuracy suite, runs the FPRAS a few
times, compares against the exact count and reports mean / max relative error
and the fraction of runs inside the ``(1 + eps)`` multiplicative band.  The
paper's guarantee is probabilistic; with laptop-scale parameters the band is
wider, so the benchmark asserts a relaxed-but-meaningful version of the
claim: the *mean* relative error stays well under the configured ``epsilon``
amplified by a small constant.
"""

from __future__ import annotations

from repro.harness.experiments import run_accuracy
from repro.harness.reporting import format_table

EPSILON = 0.3


def test_e2_fpras_accuracy(benchmark, report):
    result = benchmark.pedantic(
        run_accuracy,
        kwargs={"quick": True, "epsilon": EPSILON, "trials": 3, "length": 9},
        rounds=1,
        iterations=1,
    )
    report(format_table(result.rows, title=f"E2: {result.description}"))

    for row in result.rows:
        assert row["exact"] > 0, f"workload {row['name']} has an empty slice"
        assert row["mean_rel_error"] <= 2.0 * EPSILON, row
    overall = sum(row["within_guarantee"] for row in result.rows) / len(result.rows)
    assert overall >= 0.5
