"""Batched simulation vs the per-word path, and engine-registry amortisation.

The first benchmark runs the AppUnion membership primitive — "which is the
first of these states whose language slice contains this word?" — over the
E4 (m-scaling) workloads on the bitset backend, comparing the historical
per-word path (one ``simulate`` plus a positional check per word) against
``Engine.membership_batch``, which sorts the multiset so shared prefixes are
stepped once and keeps the mask resident in the inlined extension loop.  The
benchmark asserts a ≥ 1.5× throughput win (geometric mean across the sweep);
both paths must agree on every answer first (differential check).

The second benchmark measures what the shared :class:`EngineRegistry` saves:
a registry hit returns an existing engine in a dictionary probe instead of
rebuilding the byte-chunked transition tables.

All randomness flows from the seeded ``bench_rng`` fixture, so the numbers
are reproducible run-to-run.
"""

from __future__ import annotations

import time

from repro.automata.engine import EngineRegistry, create_engine
from repro.harness.reporting import format_table
from repro.workloads.generator import scaling_suite_states

#: State counts of the E4 membership-dominated configuration.
BATCH_STATE_COUNTS = (8, 16, 24)
#: Query length: AppUnion membership questions concern words up to the
#: unrolling length, so the multiset uses a deeper slice than E4's n=8 to
#: exercise realistic prefix sharing.
BATCH_WORD_LENGTH = 12
#: Multiset size per workload; duplicates are injected below, mirroring the
#: repetition structure of stored sample multisets.
BATCH_WORDS = 2000
#: Acceptance floor for the batched path (geometric mean across the sweep).
BATCH_MIN_RATIO = 1.5
#: Registry hits must beat rebuilding the transition tables at least this much.
REGISTRY_MIN_RATIO = 3.0


def _workload_words(workload, rng):
    """A seeded multiset with the duplicate structure of sample storage.

    Half the multiset repeats earlier words: AppUnion draws its trial
    elements from stored per-state sample multisets (``ns`` words queried
    across many trials), so heavy duplication is the representative case.
    """
    alphabet = list(workload.nfa.alphabet)
    distinct = [
        tuple(rng.choice(alphabet) for _ in range(BATCH_WORD_LENGTH))
        for _ in range(BATCH_WORDS // 2)
    ]
    words = list(distinct)
    while len(words) < BATCH_WORDS:
        words.append(distinct[rng.randrange(len(distinct))])
    rng.shuffle(words)
    return words


def _per_word_seconds(engine, words, states, upto) -> float:
    """Per-word membership: one simulate + positional check per word."""
    checker = engine.batch_checker(states)
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        for word in words:
            checker(engine.simulate(word), upto)
        best = min(best, time.perf_counter() - started)
    return best


def _batched_seconds(engine, words, states, upto) -> float:
    """The same queries through one membership_batch pass."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        engine.membership_batch(words, states, upto=upto)
        best = min(best, time.perf_counter() - started)
    return best


def _batching_comparison(bench_rng):
    suite = scaling_suite_states(state_counts=BATCH_STATE_COUNTS)
    rows = []
    ratios = []
    for workload in suite:
        words = _workload_words(workload, bench_rng)
        engine = create_engine(workload.nfa, "bitset")
        states = sorted(workload.nfa.states, key=repr)
        upto = len(states)
        # Differential check first: both paths answer identically.
        checker = engine.batch_checker(states)
        per_word = [checker(engine.simulate(word), upto) for word in words]
        saved_before = engine.batch_steps_saved
        assert engine.membership_batch(words, states, upto=upto) == per_word
        per_word_seconds = _per_word_seconds(engine, words, states, upto)
        batched_seconds = _batched_seconds(engine, words, states, upto)
        ratio = per_word_seconds / batched_seconds
        ratios.append(ratio)
        rows.append(
            {
                "m": workload.num_states,
                "length": BATCH_WORD_LENGTH,
                "words": len(words),
                "per_word_seconds": per_word_seconds,
                "batched_seconds": batched_seconds,
                "speedup": ratio,
                "steps_saved_per_pass": (engine.batch_steps_saved - saved_before)
                // 4,
            }
        )
    return rows, ratios


def test_batched_membership_speedup(benchmark, report, bench_rng):
    """Batched AppUnion membership ≥ 1.5× over the per-word path (E4 sweep)."""
    rows, ratios = benchmark.pedantic(
        _batching_comparison, args=(bench_rng,), rounds=1, iterations=1
    )
    report(
        format_table(
            rows,
            title=(
                "Batched vs per-word AppUnion membership "
                "(bitset backend, E4 workloads)"
            ),
        )
    )
    geometric_mean = 1.0
    for ratio in ratios:
        geometric_mean *= ratio
    geometric_mean **= 1.0 / len(ratios)
    report(f"batching note: geometric-mean batched speedup {geometric_mean:.2f}x")
    assert geometric_mean >= BATCH_MIN_RATIO, (
        f"batched membership speedup {geometric_mean:.2f}x below the "
        f"{BATCH_MIN_RATIO}x target; per-m ratios: "
        f"{[round(ratio, 2) for ratio in ratios]}"
    )


def _registry_comparison():
    suite = scaling_suite_states(state_counts=BATCH_STATE_COUNTS)
    rows = []
    ratios = []
    for workload in suite:
        build_best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            create_engine(workload.nfa, "bitset")
            build_best = min(build_best, time.perf_counter() - started)
        registry = EngineRegistry()
        registry.get(workload.nfa, "bitset")  # warm the slot
        hit_best = float("inf")
        for _ in range(5):
            started = time.perf_counter()
            for _repeat in range(100):
                registry.get(workload.nfa, "bitset")
            hit_best = min(hit_best, (time.perf_counter() - started) / 100)
        ratio = build_best / hit_best
        ratios.append(ratio)
        rows.append(
            {
                "m": workload.num_states,
                "build_seconds": build_best,
                "registry_hit_seconds": hit_best,
                "speedup": ratio,
            }
        )
    return rows, ratios


def test_registry_amortises_table_construction(benchmark, report):
    """A registry hit must be far cheaper than rebuilding the tables."""
    rows, ratios = benchmark.pedantic(_registry_comparison, rounds=1, iterations=1)
    report(
        format_table(
            rows, title="Engine registry: table construction vs registry hit"
        )
    )
    minimum = min(ratios)
    report(f"registry note: worst-case hit speedup {minimum:.1f}x")
    assert minimum >= REGISTRY_MIN_RATIO, (
        f"registry hit only {minimum:.1f}x faster than construction "
        f"(target {REGISTRY_MIN_RATIO}x)"
    )
