"""E5 — scaling with the accuracy target ``1/epsilon``.

The paper's sample bound per state is ``Õ(n^4/eps^2)`` and its time bound
carries ``eps^-4`` (versus ACJR's ``eps^-7`` samples and ``eps^-14`` time).
The benchmark sweeps ``epsilon`` on a fixed instance, reports measured time
and error, and asserts that the paper-formula sample requirement grows like
``eps^-2`` across the sweep (the operational, capped values are also shown).
"""

from __future__ import annotations


from repro.harness.experiments import run_scaling_epsilon
from repro.harness.reporting import format_table


def test_e5_scaling_with_epsilon(benchmark, report):
    result = benchmark.pedantic(
        run_scaling_epsilon, kwargs={"quick": True}, rounds=1, iterations=1
    )
    report(format_table(result.rows, title=f"E5: {result.description}"))

    rows = result.rows
    assert len(rows) >= 2
    # Paper formula: ns ~ eps^-2 (up to the log factor).
    first, last = rows[0], rows[-1]
    eps_first = float(str(first["epsilon"]).split("=")[-1])
    eps_last = float(str(last["epsilon"]).split("=")[-1])
    expected_ratio = (eps_first / eps_last) ** 2
    measured_ratio = last["paper_ns_formula"] / first["paper_ns_formula"]
    assert measured_ratio >= 0.8 * expected_ratio
    for row in rows:
        assert row["fpras_rel_error"] < 1.0
