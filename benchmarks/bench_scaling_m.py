"""E4 — runtime scaling with the number of automaton states ``m``.

The paper's headline structural improvement is that the number of samples
kept per (state, level) is *independent of m*; total work then grows only
because there are more states to process (low-degree polynomial in ``m``).
The benchmark measures runtime over an ``m`` sweep and asserts (a) accuracy
holds across the sweep and (b) the configured samples-per-state stays
constant as ``m`` grows.
"""

from __future__ import annotations

from repro.harness.experiments import run_scaling_states
from repro.harness.reporting import format_table


def test_e4_scaling_with_states(benchmark, report):
    result = benchmark.pedantic(
        run_scaling_states, kwargs={"quick": True}, rounds=1, iterations=1
    )
    report(format_table(result.rows, title=f"E4: {result.description}"))
    for note in result.notes:
        report(f"E4 note: {note}")

    samples_per_state = {row["fpras_samples_per_state"] for row in result.rows}
    assert len(samples_per_state) == 1, "per-state sample count must not depend on m"
    for row in result.rows:
        assert row["fpras_rel_error"] < 0.6
