"""E4 — runtime scaling with the number of automaton states ``m``.

The paper's headline structural improvement is that the number of samples
kept per (state, level) is *independent of m*; total work then grows only
because there are more states to process (low-degree polynomial in ``m``).
The benchmark measures runtime over an ``m`` sweep and asserts (a) accuracy
holds across the sweep and (b) the configured samples-per-state stays
constant as ``m`` grows.

The second benchmark compares the simulation backends head-to-head on the
same E4 workloads: the FPRAS spends essentially all of its time in
membership oracles (word simulation through the unrolled automaton), so the
backend comparison runs that membership-dominated path — many fresh-word
reachability queries per automaton — on the frozenset reference engine and
on the bit-parallel bitset engine, and asserts the bitset backend is at
least 3x faster.
"""

from __future__ import annotations

import time

from block_workloads import best_of, block_instance, block_words

from repro.automata.engine import create_engine
from repro.harness.experiments import run_scaling_states
from repro.harness.reporting import format_table
from repro.workloads.generator import scaling_suite_states

#: State counts of the membership-dominated backend comparison; the larger
#: end of the E4 sweep is where the frozenset unions hurt the most.
SPEEDUP_STATE_COUNTS = (8, 16, 24)
SPEEDUP_WORDS = 2000
SPEEDUP_MIN_RATIO = 3.0

#: State counts of the large-m block-backend sweep (the m >> 64 regime the
#: numpy backend targets); the assertion only binds at the largest m.
BLOCK_STATE_COUNTS = (64, 128, 256, 512)
BLOCK_WORDS = 300
BLOCK_WORD_LENGTH = 12
#: At the largest m the numpy backend must at least match the bitset
#: backend's batched membership throughput (it is ~2-3x faster in practice;
#: the conservative bound keeps the assertion robust on noisy CI runners).
BLOCK_MIN_RATIO_AT_MAX_M = 1.0


def test_e4_scaling_with_states(benchmark, report, bench_seed):
    result = benchmark.pedantic(
        run_scaling_states,
        kwargs={"quick": True, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report(format_table(result.rows, title=f"E4: {result.description}"))
    for note in result.notes:
        report(f"E4 note: {note}")

    samples_per_state = {row["fpras_samples_per_state"] for row in result.rows}
    assert len(samples_per_state) == 1, "per-state sample count must not depend on m"
    for row in result.rows:
        assert row["fpras_rel_error"] < 0.6


def _membership_seconds(engine, words) -> float:
    """Time many whole-word reachability queries (best of three passes)."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        hits = 0
        for word in words:
            if engine.accepts(word):
                hits += 1
        best = min(best, time.perf_counter() - started)
    return best


def _engine_comparison(bench_rng):
    """Measure reference vs bitset membership throughput on the E4 suite."""
    suite = scaling_suite_states(state_counts=SPEEDUP_STATE_COUNTS)
    rows = []
    ratios = []
    for workload in suite:
        alphabet = list(workload.nfa.alphabet)
        words = [
            tuple(bench_rng.choice(alphabet) for _ in range(workload.length))
            for _ in range(SPEEDUP_WORDS)
        ]
        reference = create_engine(workload.nfa, "reference")
        bitset = create_engine(workload.nfa, "bitset")
        # Both backends must agree on every query (differential check).
        agreement = [reference.accepts(word) == bitset.accepts(word) for word in words]
        assert all(agreement)
        reference_seconds = _membership_seconds(reference, words)
        bitset_seconds = _membership_seconds(bitset, words)
        ratio = reference_seconds / bitset_seconds
        ratios.append(ratio)
        rows.append(
            {
                "m": workload.num_states,
                "length": workload.length,
                "words": SPEEDUP_WORDS,
                "reference_seconds": reference_seconds,
                "bitset_seconds": bitset_seconds,
                "speedup": ratio,
            }
        )
    return rows, ratios


def test_e4_engine_membership_speedup(benchmark, report, bench_rng):
    """Bitset vs reference on E4's membership-dominated configuration."""
    rows, ratios = benchmark.pedantic(
        _engine_comparison, args=(bench_rng,), rounds=1, iterations=1
    )
    report(
        format_table(
            rows,
            title=(
                "E4 backend comparison: membership-dominated word simulation "
                "(reference vs bitset)"
            ),
        )
    )
    geometric_mean = 1.0
    for ratio in ratios:
        geometric_mean *= ratio
    geometric_mean **= 1.0 / len(ratios)
    report(f"E4 backend note: geometric-mean bitset speedup {geometric_mean:.2f}x")
    assert geometric_mean >= SPEEDUP_MIN_RATIO, (
        f"bitset speedup {geometric_mean:.2f}x below the {SPEEDUP_MIN_RATIO}x target; "
        f"per-m ratios: {[round(r, 2) for r in ratios]}"
    )


def _block_backend_comparison(bench_rng):
    """Bitset vs numpy batched membership throughput over an m >> 64 sweep."""
    rows = []
    ratios = {}
    for num_states in BLOCK_STATE_COUNTS:
        nfa = block_instance(num_states, seed=17 + num_states)
        words = block_words(nfa, bench_rng, BLOCK_WORDS, BLOCK_WORD_LENGTH)
        bitset = create_engine(nfa, "bitset")
        block = create_engine(nfa, "numpy")
        # Differential check: both backends must agree on every query.
        assert bitset.accepts_batch(words) == block.accepts_batch(words)
        bitset_seconds = best_of(lambda: bitset.accepts_batch(words))
        block_seconds = best_of(lambda: block.accepts_batch(words))
        ratio = bitset_seconds / block_seconds
        ratios[num_states] = ratio
        rows.append(
            {
                "m": num_states,
                "words": BLOCK_WORDS,
                "length": BLOCK_WORD_LENGTH,
                "bitset_seconds": bitset_seconds,
                "numpy_seconds": block_seconds,
                "numpy_speedup": ratio,
            }
        )
    return rows, ratios


def test_e4_block_backend_large_m(benchmark, report, bench_rng):
    """numpy block backend vs bitset on the m in {64..512} membership sweep."""
    rows, ratios = benchmark.pedantic(
        _block_backend_comparison, args=(bench_rng,), rounds=1, iterations=1
    )
    report(
        format_table(
            rows,
            title=(
                "E4 large-m backend comparison: batched membership "
                "(bitset vs numpy block simulation)"
            ),
        )
    )
    largest = max(BLOCK_STATE_COUNTS)
    report(
        f"E4 block note: numpy speedup at m={largest} is {ratios[largest]:.2f}x "
        f"(sweep: {[(m, round(r, 2)) for m, r in sorted(ratios.items())]})"
    )
    assert ratios[largest] >= BLOCK_MIN_RATIO_AT_MAX_M, (
        f"numpy block backend is {ratios[largest]:.2f}x the bitset throughput at "
        f"m={largest}, below the {BLOCK_MIN_RATIO_AT_MAX_M}x floor"
    )
