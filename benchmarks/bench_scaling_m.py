"""E4 — runtime scaling with the number of automaton states ``m``.

The paper's headline structural improvement is that the number of samples
kept per (state, level) is *independent of m*; total work then grows only
because there are more states to process (low-degree polynomial in ``m``).
The benchmark measures runtime over an ``m`` sweep and asserts (a) accuracy
holds across the sweep and (b) the configured samples-per-state stays
constant as ``m`` grows.

The second benchmark compares the simulation backends head-to-head on the
same E4 workloads: the FPRAS spends essentially all of its time in
membership oracles (word simulation through the unrolled automaton), so the
backend comparison runs that membership-dominated path — many fresh-word
reachability queries per automaton — on the frozenset reference engine and
on the bit-parallel bitset engine, and asserts the bitset backend is at
least 3x faster.
"""

from __future__ import annotations

import time

from repro.automata.engine import create_engine
from repro.harness.experiments import run_scaling_states
from repro.harness.reporting import format_table
from repro.workloads.generator import scaling_suite_states

#: State counts of the membership-dominated backend comparison; the larger
#: end of the E4 sweep is where the frozenset unions hurt the most.
SPEEDUP_STATE_COUNTS = (8, 16, 24)
SPEEDUP_WORDS = 2000
SPEEDUP_MIN_RATIO = 3.0


def test_e4_scaling_with_states(benchmark, report, bench_seed):
    result = benchmark.pedantic(
        run_scaling_states,
        kwargs={"quick": True, "seed": bench_seed},
        rounds=1,
        iterations=1,
    )
    report(format_table(result.rows, title=f"E4: {result.description}"))
    for note in result.notes:
        report(f"E4 note: {note}")

    samples_per_state = {row["fpras_samples_per_state"] for row in result.rows}
    assert len(samples_per_state) == 1, "per-state sample count must not depend on m"
    for row in result.rows:
        assert row["fpras_rel_error"] < 0.6


def _membership_seconds(engine, words) -> float:
    """Time many whole-word reachability queries (best of three passes)."""
    best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        hits = 0
        for word in words:
            if engine.accepts(word):
                hits += 1
        best = min(best, time.perf_counter() - started)
    return best


def _engine_comparison(bench_rng):
    """Measure reference vs bitset membership throughput on the E4 suite."""
    suite = scaling_suite_states(state_counts=SPEEDUP_STATE_COUNTS)
    rows = []
    ratios = []
    for workload in suite:
        alphabet = list(workload.nfa.alphabet)
        words = [
            tuple(bench_rng.choice(alphabet) for _ in range(workload.length))
            for _ in range(SPEEDUP_WORDS)
        ]
        reference = create_engine(workload.nfa, "reference")
        bitset = create_engine(workload.nfa, "bitset")
        # Both backends must agree on every query (differential check).
        agreement = [reference.accepts(word) == bitset.accepts(word) for word in words]
        assert all(agreement)
        reference_seconds = _membership_seconds(reference, words)
        bitset_seconds = _membership_seconds(bitset, words)
        ratio = reference_seconds / bitset_seconds
        ratios.append(ratio)
        rows.append(
            {
                "m": workload.num_states,
                "length": workload.length,
                "words": SPEEDUP_WORDS,
                "reference_seconds": reference_seconds,
                "bitset_seconds": bitset_seconds,
                "speedup": ratio,
            }
        )
    return rows, ratios


def test_e4_engine_membership_speedup(benchmark, report, bench_rng):
    """Bitset vs reference on E4's membership-dominated configuration."""
    rows, ratios = benchmark.pedantic(
        _engine_comparison, args=(bench_rng,), rounds=1, iterations=1
    )
    report(
        format_table(
            rows,
            title=(
                "E4 backend comparison: membership-dominated word simulation "
                "(reference vs bitset)"
            ),
        )
    )
    geometric_mean = 1.0
    for ratio in ratios:
        geometric_mean *= ratio
    geometric_mean **= 1.0 / len(ratios)
    report(f"E4 backend note: geometric-mean bitset speedup {geometric_mean:.2f}x")
    assert geometric_mean >= SPEEDUP_MIN_RATIO, (
        f"bitset speedup {geometric_mean:.2f}x below the {SPEEDUP_MIN_RATIO}x target; "
        f"per-m ratios: {[round(r, 2) for r in ratios]}"
    )
