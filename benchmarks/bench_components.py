"""Micro-benchmarks of the FPRAS building blocks.

Not tied to a specific experiment id; these time the individual components
(exact subset DP, determinisation, AppUnion, one full FPRAS run, the ACJR
baseline) so regressions in any layer are visible independently of the
experiment-level numbers.
"""

from __future__ import annotations

import random

from repro.automata.dfa import determinize
from repro.automata.engine import create_engine
from repro.automata.exact import count_exact
from repro.automata.families import substring_nfa, suffix_nfa, union_of_patterns_nfa
from repro.counting.acjr import count_nfa_acjr
from repro.counting.fpras import count_nfa
from repro.counting.params import FPRASParameters, ParameterScale
from repro.counting.union import SetAccess, approximate_union

LENGTH = 10


def test_bench_exact_subset_dp(benchmark):
    nfa = union_of_patterns_nfa(["00", "11", "0101"])
    value = benchmark(count_exact, nfa, LENGTH)
    assert value > 0


def test_bench_determinize(benchmark):
    nfa = suffix_nfa("010110")
    dfa = benchmark(determinize, nfa)
    assert dfa.num_states >= nfa.num_states


def test_bench_appunion(benchmark, bench_rng):
    parameters = FPRASParameters(
        epsilon=0.3, scale=ParameterScale.practical(union_trial_cap=200)
    )
    universe = list(range(200))
    sets = []
    for start in range(0, 200, 40):
        elements = universe[start : start + 80]
        sets.append(
            SetAccess(
                oracle=lambda item, members=frozenset(elements): item in members,
                samples=[bench_rng.choice(elements) for _ in range(64)],
                size_estimate=len(elements),
            )
        )
    trial_seed = bench_rng.randrange(2**31)

    def run():
        return approximate_union(
            sets, epsilon=0.2, delta=0.05, size_slack=0.0, parameters=parameters,
            rng=random.Random(trial_seed),
        )

    estimate = benchmark(run)
    assert 100 <= estimate.estimate <= 300


def test_bench_fpras_full_run(benchmark, bench_rng):
    nfa = substring_nfa("101")
    exact = count_exact(nfa, LENGTH)
    seed = bench_rng.randrange(2**31)

    def run():
        return count_nfa(nfa, LENGTH, epsilon=0.3, seed=seed)

    result = benchmark(run)
    assert result.relative_error(exact) < 0.5


def test_bench_acjr_full_run(benchmark, bench_rng):
    nfa = substring_nfa("101")
    exact = count_exact(nfa, LENGTH)
    seed = bench_rng.randrange(2**31)

    def run():
        return count_nfa_acjr(nfa, LENGTH, epsilon=0.3, sample_cap=48, seed=seed)

    result = benchmark(run)
    assert result.relative_error(exact) < 0.5


def test_bench_bitset_membership(benchmark, bench_rng):
    """Engine-level micro-benchmark: whole-word simulation on the bitset backend."""
    nfa = union_of_patterns_nfa(["00", "11", "0101"])
    engine = create_engine(nfa, "bitset")
    alphabet = list(nfa.alphabet)
    words = [
        tuple(bench_rng.choice(alphabet) for _ in range(LENGTH)) for _ in range(500)
    ]

    def run():
        return sum(1 for word in words if engine.accepts(word))

    hits = benchmark(run)
    assert 0 < hits <= len(words)
