"""E1 — samples maintained per (state, level): ACJR vs this paper.

Regenerates the comparison that motivates the paper (Section 1): the prior
FPRAS keeps ``O((mn/eps)^7)`` samples per state while the new scheme keeps
``Õ(n^4/eps^2)`` — independent of ``m``.  The benchmark times the formula
sweep (cheap) and, more importantly, prints the resulting table and asserts
its shape: the new scheme's per-state sample count never exceeds ACJR's and
does not grow with ``m``.
"""

from __future__ import annotations

from repro.harness.experiments import run_sample_complexity
from repro.harness.reporting import format_table


def test_e1_sample_complexity_table(benchmark, report):
    result = benchmark.pedantic(
        run_sample_complexity, kwargs={"quick": True}, rounds=1, iterations=1
    )
    report(format_table(result.rows, title=f"E1: {result.description}"))

    # Shape assertions: the paper's scheme always needs (far) fewer samples,
    # and its per-state count is independent of m.
    for row in result.rows:
        assert row["paper_samples"] <= row["acjr_samples"]
    by_n_eps = {}
    for row in result.rows:
        by_n_eps.setdefault((row["n"], row["epsilon"]), set()).add(row["paper_samples"])
    assert all(len(values) == 1 for values in by_n_eps.values())

    # The gap widens as m grows (ACJR scales with m^7).
    fixed = [row for row in result.rows if row["n"] == 10 and row["epsilon"] == 0.5]
    ratios = [row["sample_ratio"] for row in sorted(fixed, key=lambda r: r["m"])]
    assert ratios == sorted(ratios)
