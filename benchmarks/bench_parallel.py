"""Wall-clock benchmark for the sharded parallel counting executor.

Two claims from ``docs/architecture.md`` are pinned here on an FPRAS
workload large enough to amortise pool startup (forking the workers, one
table broadcast per level):

* **parity** — ``workers=1`` and ``workers=4`` execute the same shard plan
  and must return bit-identical estimates and algorithm-level work
  counters (always asserted, on any machine);
* **speedup** — with four CPUs available, four workers must cut wall time
  by at least :data:`MIN_SPEEDUP` over the serial execution of the same
  plan.  The speedup assertion is gated on
  ``multiprocessing.cpu_count() >= WORKERS`` so single-core runners
  still validate parity and report the (meaningless) ratio instead of
  failing on physics.

A Monte-Carlo section reports the same parity/throughput story for the
other sharded trial loop; its estimate must additionally equal the plain
serial path bit for bit, because the coordinator draws the identical word
stream.
"""

from __future__ import annotations

import multiprocessing
import time

from repro.automata.families import divisibility_nfa
from repro.counting.api import count
from repro.counting.params import ParameterScale
from repro.harness.reporting import format_table

#: Pool size exercised by the benchmark (the acceptance configuration).
WORKERS = 4

#: Shard-plan size; fixed so serial and pooled runs share one plan.
SHARDS = 4

#: Required wall-time speedup of 4 workers over serial on >= 4 CPUs.
MIN_SPEEDUP = 1.5

#: The FPRAS workload: 96 states x 12 levels with moderate sampling caps
#: runs for seconds serially, so the ~100 ms of pool startup and per-level
#: sync is well amortised.
DIVISOR = 96
LENGTH = 12
EPSILON = 0.4
SEED = 20240727
SCALE = ParameterScale.practical(sample_cap=16, union_trial_cap=24)

#: Monte-Carlo section: enough chunks that every worker stays busy.
MC_SAMPLES = 40_000
MC_LENGTH = 12

WORK_KEYS = ("union_calls", "membership_calls", "sample_draws", "padded_states")


def _fpras_run(workers: int):
    nfa = divisibility_nfa(DIVISOR)
    started = time.perf_counter()
    report = count(
        nfa,
        LENGTH,
        method="fpras",
        epsilon=EPSILON,
        seed=SEED,
        scale=SCALE,
        workers=workers,
        shards=SHARDS,
    )
    return time.perf_counter() - started, report


def _montecarlo_run(workers: int):
    nfa = divisibility_nfa(DIVISOR)
    started = time.perf_counter()
    report = count(
        nfa,
        MC_LENGTH,
        method="montecarlo",
        seed=SEED,
        num_samples=MC_SAMPLES,
        workers=workers,
    )
    return time.perf_counter() - started, report


def test_fpras_sharded_speedup(report):
    """4-worker FPRAS: bit-identical to serial, >= 1.5x faster on >= 4 CPUs."""
    cpus = multiprocessing.cpu_count()
    serial_seconds, serial = _fpras_run(1)
    pooled_seconds, pooled = _fpras_run(WORKERS)

    # Parity is unconditional: the shard plan, not the pool, fixes results.
    assert pooled.estimate == serial.estimate
    assert pooled.raw.state_estimates == serial.raw.state_estimates
    for key in WORK_KEYS:
        assert pooled.details[key] == serial.details[key]

    speedup = serial_seconds / pooled_seconds
    report(
        format_table(
            [
                {
                    "path": f"workers=1 (shards={SHARDS})",
                    "seconds": round(serial_seconds, 3),
                    "estimate": serial.estimate,
                },
                {
                    "path": f"workers={WORKERS} (shards={SHARDS})",
                    "seconds": round(pooled_seconds, 3),
                    "estimate": pooled.estimate,
                },
            ],
            title=(
                f"FPRAS sharded executor, divisibility({DIVISOR}) n={LENGTH} "
                f"(speedup {speedup:.2f}x on {cpus} CPUs)"
            ),
        )
    )
    if cpus >= WORKERS:
        assert speedup >= MIN_SPEEDUP, (
            f"4-worker FPRAS run is only {speedup:.2f}x serial on {cpus} CPUs "
            f"(required >= {MIN_SPEEDUP}x)"
        )
    else:
        report(
            f"parallel note: only {cpus} CPU(s) available — speedup assertion "
            f"skipped (measured {speedup:.2f}x), parity still asserted"
        )


def test_montecarlo_sharded_parity_and_throughput(report):
    """Monte-Carlo workers: identical stream/estimate, throughput reported."""
    cpus = multiprocessing.cpu_count()
    serial_seconds, serial = _montecarlo_run(1)
    pooled_seconds, pooled = _montecarlo_run(WORKERS)
    assert pooled.estimate == serial.estimate
    assert pooled.details["hits"] == serial.details["hits"]
    speedup = serial_seconds / pooled_seconds
    report(
        format_table(
            [
                {"path": "workers=1", "seconds": round(serial_seconds, 3)},
                {"path": f"workers={WORKERS}", "seconds": round(pooled_seconds, 3)},
            ],
            title=(
                f"Monte-Carlo sharded executor, divisibility({DIVISOR}) "
                f"n={MC_LENGTH}, {MC_SAMPLES} samples "
                f"(speedup {speedup:.2f}x on {cpus} CPUs)"
            ),
        )
    )
