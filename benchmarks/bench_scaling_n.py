"""E3 — runtime scaling with the word length ``n``, plus streaming memory.

Theorem 3 bounds the runtime polynomially in ``n``.  The benchmark measures
wall-clock time of the (scaled) FPRAS as ``n`` grows on a fixed automaton,
alongside the exact counter and the naive Monte-Carlo baseline, and asserts
that the estimates stay accurate while the measured growth is polynomial
(empirical log-log exponent far below exponential blow-up).

The long-word half of the file probes the *memory* axis the streaming
store added: the unary bounded-count workload
(:mod:`repro.workloads.longwords`) with a tracemalloc peak-memory column
per row.  The quick test keeps tier-of-seconds lengths; the full
``n ∈ {1000, 5000, 20000}`` sweep — the one recorded in ``BENCH_10.json`` —
runs under ``REPRO_LONGWORD_FULL=1`` (tens of minutes under tracemalloc,
since the probe traces every allocation of ~10^8 descent steps).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.complexity import growth_exponent
from repro.harness.experiments import run_scaling_length
from repro.harness.reporting import format_table
from repro.workloads.longwords import long_word_sweep


def test_e3_scaling_with_length(benchmark, report):
    result = benchmark.pedantic(
        run_scaling_length, kwargs={"quick": True}, rounds=1, iterations=1
    )
    report(format_table(result.rows, title=f"E3: {result.description}"))
    for note in result.notes:
        report(f"E3 note: {note}")

    lengths = [row["length"] for row in result.rows]
    times = [row["fpras_seconds"] for row in result.rows]
    for row in result.rows:
        assert row["fpras_rel_error"] < 0.6
    if all(t > 0 for t in times) and len(times) >= 3:
        exponent = growth_exponent([float(n) for n in lengths], times)
        # Theorem 3's dependence is a low-degree polynomial in n; anything
        # below ~6 here is consistent, exponential growth would exceed it.
        assert exponent < 8.0


def _memory_table(sweep) -> str:
    rows = [
        {
            "n": row["n"],
            "store": row["store"],
            "seconds": round(row["seconds"], 3),
            "peak_kb": round(row["peak_bytes"] / 1024.0, 1),
            "estimate": row["estimate"],
            "spilled_levels": row["counters"].get("store_spilled_levels", 0),
        }
        for row in sweep["rows"]
    ]
    return format_table(rows, title="long-word peak memory (tracemalloc)")


def test_longword_windowed_store_bounds_memory(benchmark, report):
    """Quick long-word sweep: windowed peak ≪ dict peak, values identical."""
    sweep = benchmark.pedantic(
        long_word_sweep,
        kwargs={"ns": (300, 600), "dict_store_ceiling": None},
        rounds=1,
        iterations=1,
    )
    report(_memory_table(sweep))
    by_cell = {(row["n"], row["store"]): row for row in sweep["rows"]}
    for n in (300, 600):
        # The unary workload accepts exactly one word per length, and the
        # store must not change the estimate (bit-identical parity).
        assert by_cell[(n, "dict")]["estimate"] == by_cell[(n, "windowed")]["estimate"]
        assert by_cell[(n, "windowed")]["estimate"] == pytest.approx(1.0)
    # The windowed store actually streams (spills happened) and already
    # wins on peak memory at bench-quick lengths.
    assert by_cell[(600, "windowed")]["counters"]["store_spilled_levels"] > 0
    assert (
        by_cell[(600, "windowed")]["peak_bytes"]
        < by_cell[(600, "dict")]["peak_bytes"]
    )


@pytest.mark.skipif(
    not os.environ.get("REPRO_LONGWORD_FULL"),
    reason="full n<=20000 sweep takes tens of minutes under tracemalloc; "
    "set REPRO_LONGWORD_FULL=1 to run (BENCH_10.json records its output)",
)
def test_longword_full_sweep(benchmark, report):
    """The headline sweep: n ∈ {1000, 5000, 20000}, 10x memory bound."""
    sweep = benchmark.pedantic(long_word_sweep, rounds=1, iterations=1)
    report(_memory_table(sweep))
    summary = sweep["summary"]
    report(
        f"windowed peak ratio n={summary['n_max']} vs n={summary['n_min']}: "
        f"{summary['windowed_peak_ratio']:.2f}x (bound "
        f"{summary['memory_bound_ratio']:.0f}x)"
    )
    assert summary["n_max"] == 20000
    assert summary["within_memory_bound"]
