"""E3 — runtime scaling with the word length ``n``.

Theorem 3 bounds the runtime polynomially in ``n``.  The benchmark measures
wall-clock time of the (scaled) FPRAS as ``n`` grows on a fixed automaton,
alongside the exact counter and the naive Monte-Carlo baseline, and asserts
that the estimates stay accurate while the measured growth is polynomial
(empirical log-log exponent far below exponential blow-up).
"""

from __future__ import annotations

from repro.analysis.complexity import growth_exponent
from repro.harness.experiments import run_scaling_length
from repro.harness.reporting import format_table


def test_e3_scaling_with_length(benchmark, report):
    result = benchmark.pedantic(
        run_scaling_length, kwargs={"quick": True}, rounds=1, iterations=1
    )
    report(format_table(result.rows, title=f"E3: {result.description}"))
    for note in result.notes:
        report(f"E3 note: {note}")

    lengths = [row["length"] for row in result.rows]
    times = [row["fpras_seconds"] for row in result.rows]
    for row in result.rows:
        assert row["fpras_rel_error"] < 0.6
    if all(t > 0 for t in times) and len(times) >= 3:
        exponent = growth_exponent([float(n) for n in lengths], times)
        # Theorem 3's dependence is a low-degree polynomial in n; anything
        # below ~6 here is consistent, exponential growth would exceed it.
        assert exponent < 8.0
