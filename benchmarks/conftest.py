"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one experiment from the index in DESIGN.md
(E1 … E7 plus the ablations).  Benchmark files do not match pytest's default
``test_*.py`` collection pattern, so name them explicitly —
``pytest benchmarks/bench_scaling_m.py -q -s`` (optionally with
``--benchmark-only``) reproduces the report data.  Each module asserts the
*shape* of the paper's claim (who wins, what stays flat) rather than
absolute numbers.

All benchmark randomness flows from one seeded ``random.Random`` (the
``bench_rng`` fixture, seeded with :data:`BENCH_SEED`), matching the seeded
entry points of :mod:`repro.harness.experiments`: a benchmark run produces
the same estimates every time — and the same estimates on every simulation
backend, which is what makes the backend-comparison numbers meaningful.
"""

from __future__ import annotations

import random

import pytest

from repro.harness.experiments import BENCH_SEED


def pytest_configure(config):
    # Benchmarks are regular pytest items; nothing special to register, but
    # keeping a conftest here ensures `pytest benchmarks/` works standalone
    # (without inheriting fixtures from the unit-test tree).
    _ = config


@pytest.fixture
def bench_seed() -> int:
    """The run-level seed every benchmark derives its randomness from."""
    return BENCH_SEED


@pytest.fixture
def bench_rng(bench_seed) -> random.Random:
    """One seeded randomness source per benchmark (deterministic runs)."""
    return random.Random(bench_seed)


@pytest.fixture(scope="session")
def report(request):
    """Collect printable report blocks and emit them at the end of the session."""
    blocks = []
    yield blocks.append
    if blocks:
        print("\n")
        for block in blocks:
            print(block)
            print()
