"""Shared configuration for the benchmark harness.

Each benchmark module regenerates one experiment from the index in DESIGN.md
(E1 … E7 plus the ablations).  Benchmarks print their result tables so that
``pytest benchmarks/ --benchmark-only -s`` reproduces the report data, and
each asserts the *shape* of the paper's claim (who wins, what stays flat)
rather than absolute numbers.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks are regular pytest items; nothing special to register, but
    # keeping a conftest here ensures `pytest benchmarks/` works standalone
    # (without inheriting fixtures from the unit-test tree).
    _ = config


@pytest.fixture(scope="session")
def report(request):
    """Collect printable report blocks and emit them at the end of the session."""
    blocks = []
    yield blocks.append
    if blocks:
        print("\n")
        for block in blocks:
            print(block)
            print()
