"""E7 — uniformity of the word sampler (Inv-2) and sampling acceptance rate.

On small slices where the uniform distribution is enumerable, the benchmark
draws a batch of words through the counting→sampling direction and measures
the total-variation distance from uniform.  Inv-2 predicts the distance is
dominated by finite-sample noise; the per-attempt acceptance rate should sit
near the analytical ``2/(3e) ≈ 0.245`` (Theorem 2's success probability with
accurate estimates).
"""

from __future__ import annotations

from repro.counting.params import SAMPLE_SUCCESS_LOWER_BOUND
from repro.harness.experiments import run_uniformity
from repro.harness.reporting import format_table


def test_e7_sampler_uniformity(benchmark, report):
    result = benchmark.pedantic(
        run_uniformity, kwargs={"quick": True, "sample_count": 300}, rounds=1, iterations=1
    )
    report(format_table(result.rows, title=f"E7: {result.description}"))
    for note in result.notes:
        report(f"E7 note: {note}")

    for row in result.rows:
        # TV distance should not exceed sampling noise by much.
        assert row["excess_tv"] <= 0.15, row
        # Acceptance rate at least the paper's worst-case lower bound 2/(3e^2),
        # and typically near 2/(3e).
        assert row["acceptance_rate"] >= SAMPLE_SUCCESS_LOWER_BOUND * 0.8, row
