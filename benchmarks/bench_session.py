"""Overhead guard for the unified counting façade.

The :class:`repro.counting.api.CountingSession` / ``repro.count`` layer is
pure dispatch — request validation, one dictionary probe into the method
registry and report normalisation — on top of the same
:class:`~repro.counting.fpras.NFACounter` run the legacy ``count_nfa`` entry
point performs.  This benchmark pins that down:

* the façade must add **less than 5 %** wall-clock overhead over direct
  ``count_nfa`` calls on a representative instance (best-of-``ROUNDS``
  timing on both sides, identical seeds, engine registry warm for both);
* repeated session calls on the same automaton must reuse the engine from
  the shared :class:`~repro.automata.engine.EngineRegistry`
  (``engine_counters["engine_cache_hit"] == 1``) and stay bit-identical
  run to run.
"""

from __future__ import annotations

import time
from statistics import median

from repro.automata.families import substring_nfa
from repro.counting.api import CountingSession, count
from repro.counting.fpras import count_nfa
from repro.harness.reporting import format_table

#: The fixed instance: heavy enough that one run takes tens of milliseconds,
#: so the façade's constant per-call cost is measured against real work.
LENGTH = 10
EPSILON = 0.4
SEED = 20240727

#: Timing repetitions.  Each round times every path back to back and the
#: guard uses the *median of the per-round ratios*: pairing the paths
#: within a round cancels slow machine-load drift (which on a ~100 ms
#: workload is far larger than the façade's microsecond dispatch cost),
#: and the median is robust to the occasional scheduler hiccup.
ROUNDS = 9

#: The façade may add at most this factor of wall-clock overhead.
MAX_OVERHEAD_FACTOR = 1.05


def _overhead_comparison():
    nfa = substring_nfa("101")
    # Warm the shared engine registry so neither path pays construction.
    count_nfa(nfa, LENGTH, epsilon=EPSILON, seed=SEED)
    session = CountingSession(epsilon=EPSILON, seed=SEED)

    paths = [
        (
            "count_nfa (legacy shim)",
            lambda: count_nfa(nfa, LENGTH, epsilon=EPSILON, seed=SEED),
        ),
        ("CountingSession.count", lambda: session.count(nfa, LENGTH)),
        (
            "repro.count one-shot",
            lambda: count(nfa, LENGTH, method="fpras", epsilon=EPSILON, seed=SEED),
        ),
    ]
    timings = {name: [] for name, _fn in paths}
    for _round in range(ROUNDS):
        for name, fn in paths:
            # Best of two back-to-back runs per round: trims the scheduler
            # noise tail without losing the paired-round structure.
            best = float("inf")
            for _repeat in range(2):
                started = time.perf_counter()
                fn()
                best = min(best, time.perf_counter() - started)
            timings[name].append(best)
    direct_name = paths[0][0]
    rows = []
    for name, _fn in paths:
        ratios = [
            seconds / direct
            for seconds, direct in zip(timings[name], timings[direct_name])
        ]
        rows.append(
            {
                "path": name,
                "best_seconds": min(timings[name]),
                "vs_direct": median(ratios),
            }
        )
    return nfa, session, rows


def test_session_overhead_under_five_percent(benchmark, report):
    """Façade dispatch must stay within 5% of direct count_nfa wall time."""
    _nfa, _session, rows = benchmark.pedantic(
        _overhead_comparison, rounds=1, iterations=1
    )
    report(
        format_table(
            rows,
            title=f"Session façade overhead (substring_nfa('101'), n={LENGTH})",
        )
    )
    for row in rows[1:]:
        assert row["vs_direct"] <= MAX_OVERHEAD_FACTOR, (
            f"{row['path']} is {row['vs_direct']:.3f}x direct count_nfa "
            f"(limit {MAX_OVERHEAD_FACTOR}x)"
        )


def test_session_repeat_calls_hit_engine_cache(report):
    """Repeated session calls on one automaton reuse the registry engine."""
    nfa = substring_nfa("0110")
    session = CountingSession(epsilon=EPSILON, seed=SEED)
    first = session.count(nfa, LENGTH)
    second = session.count(nfa, LENGTH)
    assert second.engine_counters["engine_cache_hit"] == 1, (
        "second session call on the same automaton should hit the shared "
        "engine registry"
    )
    # Engine sharing is observationally transparent: identical estimates
    # and representation-independent work counters.
    assert first.estimate == second.estimate
    assert first.raw.sample_draws == second.raw.sample_draws
    assert first.raw.union_calls == second.raw.union_calls
    report(
        f"session note: repeat-call engine_cache_hit="
        f"{second.engine_counters['engine_cache_hit']}, "
        f"estimate drift={abs(first.estimate - second.estimate)}"
    )
