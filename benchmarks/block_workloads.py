"""Shared workload construction for the block-backend benchmarks.

``bench_scaling_m.py`` (the large-m throughput assertion) and
``bench_block.py`` (the crossover recorder) must measure the *same*
workload shape, otherwise the recorded crossover no longer justifies the
asserted threshold.  Both import the instance builder and the best-of-N
timer from here.
"""

from __future__ import annotations

import time
from typing import Callable, List, Tuple

from repro.automata.nfa import NFA
from repro.automata.random_gen import random_nfa


def block_instance(num_states: int, seed: int) -> NFA:
    """The E4-style random automaton the block benchmarks run on."""
    return random_nfa(
        num_states,
        density=min(0.5, 2.5 / num_states + 0.15),
        seed=seed,
        accepting_fraction=0.3,
    )


def block_words(nfa: NFA, bench_rng, count: int, length: int) -> List[Tuple[str, ...]]:
    """A deterministic random word multiset over the automaton's alphabet."""
    alphabet = list(nfa.alphabet)
    return [
        tuple(bench_rng.choice(alphabet) for _ in range(length))
        for _ in range(count)
    ]


def best_of(run: Callable[[], object], repeats: int = 3) -> float:
    """Wall-clock seconds of the fastest of ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best
