"""Level-kernel speedup gate: one tensor pass per unrolling level.

The level-kernel API (negotiated through ``Engine.capabilities()``) turns
batched :class:`~repro.automata.unroll.ReachabilityCache` materialisation
from one engine call per trie node into one stacked gather/OR-reduce per
``(level, symbol)`` group.  This benchmark runs the shared sweep
(:mod:`repro.workloads.levelkernel` — also emitted into ``BENCH_10.json``
by ``tools/bench_report.py``) over ``m ∈ {64, 256, 512, 1024}`` and
asserts the PR 10 acceptance claim: at ``m = 512`` the kernel path is at
least 2x the PR 4 scalar numpy path, with bit-identical handles and
identical work counters (parity is asserted *inside* every measurement —
a fast wrong kernel cannot publish a number).

Like every benchmark in this tree, the assertion pins the shape of the
claim (the floor at the gate point), not absolute timings; the large-m
edge rides along as recorded context.
"""

from __future__ import annotations

import pytest

from repro.harness.reporting import format_table
from repro.workloads.levelkernel import (
    DEFAULT_SWEEP_MS,
    KERNEL_GATE_M,
    KERNEL_SPEEDUP_FLOOR,
    level_kernel_sweep,
)

pytest.importorskip("numpy")


def test_level_kernel_speedup_gate(benchmark, report):
    sweep = benchmark.pedantic(level_kernel_sweep, rounds=1, iterations=1)
    rows = sweep["rows"]
    report(
        format_table(
            rows,
            title="Level-kernel sweep (batched ReachabilityCache, kernel vs scalar numpy)",
        )
    )
    summary = sweep["summary"]
    report(
        f"Level-kernel gate: {summary['gate_speedup']:.2f}x at "
        f"m={summary['gate_m']} (floor {summary['speedup_floor']:.1f}x)"
    )
    assert set(row["m"] for row in rows) == set(DEFAULT_SWEEP_MS)
    # Every row passed the in-sweep observational-identity asserts.
    assert all(row["parity"] for row in rows)
    assert all(row["kernel_batches"] > 0 for row in rows)
    assert summary["gate_m"] == KERNEL_GATE_M
    assert summary["meets_floor"], (
        f"level-kernel path is {summary['gate_speedup']:.2f}x at "
        f"m={KERNEL_GATE_M}, below the {KERNEL_SPEEDUP_FLOOR:.1f}x floor: "
        f"{[(row['m'], round(row['speedup'], 2)) for row in rows]}"
    )
