"""Ablations of the design choices called out in DESIGN.md §5.

Three switches of the scaled implementation are compared on the same
instance with the same seed policy:

* ``reuse_union_estimates`` — memoising AppUnion estimates inside a sampling
  batch (fast default) vs the paper's fresh randomisation per call;
* ``strict_sample_consumption`` — the paper's destructive dequeue vs the
  cyclic reuse of the stored sample multiset;
* membership-oracle amortisation — the per-word reachability cache vs naive
  re-simulation (measured as simulated steps per lookup on the warm cache).

The assertions capture the expected trade-off shape: the fast defaults do
not sacrifice accuracy beyond the configured band while doing measurably
less work.
"""

from __future__ import annotations

import time

from repro.automata.exact import count_exact
from repro.automata.families import suffix_nfa
from repro.automata.unroll import ReachabilityCache
from repro.counting.fpras import FPRASParameters, NFACounter
from repro.counting.params import ParameterScale
from repro.harness.reporting import format_table

LENGTH = 8
EPSILON = 0.4


def _run_variant(nfa, scale: ParameterScale, seed: int = 3):
    parameters = FPRASParameters(epsilon=EPSILON, delta=0.2, scale=scale, seed=seed)
    started = time.perf_counter()
    result = NFACounter(nfa, LENGTH, parameters).run()
    elapsed = time.perf_counter() - started
    return result, elapsed


def test_ablation_union_estimate_reuse(benchmark, report):
    nfa = suffix_nfa("0110")
    exact = count_exact(nfa, LENGTH)

    def run_both():
        reuse_result, reuse_time = _run_variant(
            nfa, ParameterScale.practical(sample_cap=16, union_trial_cap=24)
        )
        fresh_result, fresh_time = _run_variant(
            nfa, ParameterScale.faithful_scaled(sample_cap=16, union_trial_cap=24)
        )
        return reuse_result, reuse_time, fresh_result, fresh_time

    reuse_result, reuse_time, fresh_result, fresh_time = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = [
        {
            "variant": "reuse estimates (default)",
            "estimate": reuse_result.estimate,
            "rel_error": reuse_result.relative_error(exact),
            "union_calls": reuse_result.union_calls,
            "seconds": reuse_time,
        },
        {
            "variant": "fresh estimates (paper-faithful)",
            "estimate": fresh_result.estimate,
            "rel_error": fresh_result.relative_error(exact),
            "union_calls": fresh_result.union_calls,
            "seconds": fresh_time,
        },
    ]
    report(format_table(rows, title="Ablation: AppUnion estimate reuse inside a batch"))

    # Reuse must do strictly fewer AppUnion calls and stay accurate.
    assert reuse_result.union_calls < fresh_result.union_calls
    assert reuse_result.relative_error(exact) < 0.6
    assert fresh_result.relative_error(exact) < 0.6


def test_ablation_sample_consumption(benchmark, report):
    nfa = suffix_nfa("0110")
    exact = count_exact(nfa, LENGTH)

    def run_both():
        cyclic_result, _ = _run_variant(
            nfa, ParameterScale.practical(sample_cap=16, union_trial_cap=24)
        )
        strict_result, _ = _run_variant(
            nfa,
            ParameterScale.practical(sample_cap=16, union_trial_cap=24).with_overrides(
                strict_sample_consumption=True
            ),
        )
        return cyclic_result, strict_result

    cyclic_result, strict_result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        {
            "variant": "cyclic reuse (default)",
            "estimate": cyclic_result.estimate,
            "rel_error": cyclic_result.relative_error(exact),
        },
        {
            "variant": "strict dequeue (paper)",
            "estimate": strict_result.estimate,
            "rel_error": strict_result.relative_error(exact),
        },
    ]
    report(format_table(rows, title="Ablation: sample consumption policy"))
    assert cyclic_result.relative_error(exact) < 0.6


def test_ablation_membership_cache(benchmark, report):
    nfa = suffix_nfa("0110")
    words = [nfa.some_word_of_length(LENGTH) for _ in range(1)] * 50

    def warm_lookups():
        cache = ReachabilityCache(nfa)
        for word in words:
            cache.reachable(word)
        return cache

    cache = benchmark.pedantic(warm_lookups, rounds=1, iterations=1)
    rows = [
        {
            "metric": "lookups",
            "value": cache.lookups,
        },
        {
            "metric": "simulated transition steps",
            "value": cache.simulated_steps,
        },
    ]
    report(format_table(rows, title="Ablation: membership-oracle amortisation"))
    # The paper's amortisation claim: repeated membership checks on stored
    # words cost O(1) after the first simulation of each word.
    assert cache.simulated_steps <= LENGTH
    assert cache.lookups == len(words)
