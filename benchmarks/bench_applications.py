"""E6 — the database applications end to end.

Regular path query counting, probabilistic query evaluation and probabilistic
graph homomorphism, each answered through the #NFA reduction and the paper's
FPRAS, and each validated against an independent exact evaluator.
"""

from __future__ import annotations

from repro.harness.experiments import run_applications
from repro.harness.reporting import format_table


def test_e6_applications(benchmark, report):
    result = benchmark.pedantic(
        run_applications, kwargs={"quick": True}, rounds=1, iterations=1
    )
    report(format_table(result.rows, title=f"E6: {result.description}"))
    for note in result.notes:
        report(f"E6 note: {note}")

    assert len(result.rows) == 3
    for row in result.rows:
        assert row["exact"] > 0
        assert row["rel_error"] < 0.5, row
        assert row["nfa_states"] > 0
