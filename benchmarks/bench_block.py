"""Block-simulation crossover: where the numpy backend overtakes bitset.

The bitset backend costs ``ceil(m / 8)`` Python-level loop iterations per
simulation step; the numpy block backend costs a fixed handful of NumPy
calls per step (scalar path) or per trie level (batched path) regardless
of ``m``.  Somewhere between those regimes the curves cross.  This
benchmark sweeps ``m`` over both paths, reports the measured crossover
point of each, and checks that the ``auto`` selection threshold
(:data:`repro.automata.engine.AUTO_BLOCK_THRESHOLD`) is consistent with
the measurement: at every ``m`` above the threshold the batched numpy
path — the one the counting layer actually drives since the AppUnion
membership loop was batched — must not lose to bitset.

Like every benchmark in this tree, the assertions pin the *shape* of the
claim (who wins where), not absolute timings.
"""

from __future__ import annotations

from block_workloads import best_of, block_instance, block_words

from repro.automata.engine import AUTO_BLOCK_THRESHOLD, create_engine, resolve_backend
from repro.harness.reporting import format_table

#: The m sweep bracketing the expected crossover region.
CROSSOVER_STATE_COUNTS = (32, 64, 128, 192, 256, 384, 512)
CROSSOVER_WORDS = 250
CROSSOVER_WORD_LENGTH = 12


def _sweep(bench_rng):
    """Per-m scalar and batched membership timings for both fast backends."""
    rows = []
    for num_states in CROSSOVER_STATE_COUNTS:
        nfa = block_instance(num_states, seed=29 + num_states)
        words = block_words(nfa, bench_rng, CROSSOVER_WORDS, CROSSOVER_WORD_LENGTH)
        bitset = create_engine(nfa, "bitset")
        block = create_engine(nfa, "numpy")
        assert bitset.accepts_batch(words) == block.accepts_batch(words)

        def scalar_pass(engine):
            def run():
                for word in words:
                    engine.accepts(word)
            return run

        row = {
            "m": num_states,
            "auto_resolves_to": resolve_backend(nfa, "auto"),
            "bitset_scalar_s": best_of(scalar_pass(bitset)),
            "numpy_scalar_s": best_of(scalar_pass(block)),
            "bitset_batch_s": best_of(lambda: bitset.accepts_batch(words)),
            "numpy_batch_s": best_of(lambda: block.accepts_batch(words)),
        }
        row["scalar_speedup"] = row["bitset_scalar_s"] / row["numpy_scalar_s"]
        row["batch_speedup"] = row["bitset_batch_s"] / row["numpy_batch_s"]
        rows.append(row)
    return rows


def _crossover(rows, key: str):
    """Smallest m from which the numpy backend never loses again, or None."""
    winning_from = None
    for row in rows:
        if row[key] >= 1.0:
            if winning_from is None:
                winning_from = row["m"]
        else:
            winning_from = None
    return winning_from


def test_block_backend_crossover(benchmark, report, bench_rng):
    rows = benchmark.pedantic(_sweep, args=(bench_rng,), rounds=1, iterations=1)
    report(
        format_table(
            rows,
            title="Block-simulation crossover sweep (bitset vs numpy, scalar and batched)",
        )
    )
    scalar_crossover = _crossover(rows, "scalar_speedup")
    batch_crossover = _crossover(rows, "batch_speedup")
    report(
        "Block crossover note: batched path overtakes bitset from "
        f"m={batch_crossover}, scalar path from m={scalar_crossover}; "
        f"auto threshold is m>{AUTO_BLOCK_THRESHOLD}"
    )
    # The batched path (what the counting layer drives) must have crossed
    # over by the sweep's end, and everywhere the auto selector would pick
    # numpy it must not lose on that path.
    assert batch_crossover is not None, (
        f"numpy batched path never overtook bitset: "
        f"{[(row['m'], round(row['batch_speedup'], 2)) for row in rows]}"
    )
    assert batch_crossover <= max(CROSSOVER_STATE_COUNTS)
    for row in rows:
        if row["m"] > AUTO_BLOCK_THRESHOLD:
            assert row["auto_resolves_to"] == "numpy"
            assert row["batch_speedup"] >= 1.0, (
                f"auto picks numpy at m={row['m']} but the batched path is "
                f"{row['batch_speedup']:.2f}x"
            )
        else:
            assert row["auto_resolves_to"] == "bitset"
