"""Head-to-head comparison: this paper's FPRAS vs the ACJR baseline vs others.

Reproduces, at laptop scale, the comparison that motivates the paper: on the
same instances, the new FPRAS keeps far fewer samples per state than an
ACJR-style implementation and runs faster, while naive Monte-Carlo collapses
as the language gets sparse and exact counting collapses as the automaton
gets large.  Paper-formula sample counts are printed next to the measured
(scaled) values so the configured gap is visible too.

Every estimator runs through one pinned
:class:`repro.CountingSession` — the methods differ only in the ``method=``
name, which is exactly the point of the unified counting façade.

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import CountingSession
from repro.automata.exact import language_density
from repro.automata.families import suffix_nfa, union_of_patterns_nfa
from repro.counting.params import acjr_samples_per_state, paper_samples_per_state
from repro.harness.reporting import format_table

EPSILON = 0.3
LENGTH = 12


def compare_on(name, nfa):
    session = CountingSession(epsilon=EPSILON, seed=1)
    exact = session.count(nfa, LENGTH, method="exact").raw
    rows = []

    fpras = session.count(nfa, LENGTH, method="fpras")
    rows.append(
        {
            "method": "FPRAS (this paper)",
            "estimate": round(fpras.estimate, 1),
            "rel_error": round(fpras.relative_error(exact), 4),
            "seconds": round(fpras.elapsed_seconds, 3),
            "samples/state (scaled)": fpras.details["ns"],
            "samples/state (paper formula)": f"{paper_samples_per_state(LENGTH, EPSILON):.2e}",
        }
    )

    acjr = session.count(nfa, LENGTH, method="acjr", sample_cap=96)
    rows.append(
        {
            "method": "ACJR-style baseline",
            "estimate": round(acjr.estimate, 1),
            "rel_error": round(acjr.relative_error(exact), 4),
            "seconds": round(acjr.elapsed_seconds, 3),
            "samples/state (scaled)": acjr.details["ns"],
            "samples/state (paper formula)": (
                f"{acjr_samples_per_state(nfa.num_states, LENGTH, EPSILON):.2e}"
            ),
        }
    )

    montecarlo = session.count(nfa, LENGTH, method="montecarlo", num_samples=5000)
    rows.append(
        {
            "method": "naive Monte-Carlo (5k words)",
            "estimate": round(montecarlo.estimate, 1),
            "rel_error": round(montecarlo.relative_error(exact), 4),
            "seconds": round(montecarlo.elapsed_seconds, 3),
        }
    )

    rows.append({"method": "exact (subset DP)", "estimate": exact, "rel_error": 0.0})
    density = language_density(nfa, LENGTH)
    print(
        format_table(
            rows,
            title=f"{name}: m={nfa.num_states}, n={LENGTH}, density={density:.3g}",
        )
    )
    print()


def main() -> None:
    compare_on("words ending in 010110 (sparse, nondeterministic)", suffix_nfa("010110"))
    compare_on(
        "words containing 00, 11 or 0101 (dense, overlapping unions)",
        union_of_patterns_nfa(["00", "11", "0101"]),
    )


if __name__ == "__main__":
    main()
