"""Probabilistic query evaluation and graph homomorphism through #NFA.

Two of the paper's motivating applications on tuple-independent data:

1. PQE — the probability that a self-join-free path query holds on a random
   sub-database, recovered as ``|L(A_N)| / 2^N`` for the coin-word automaton;
2. probabilistic graph homomorphism for a layered path query, reduced to the
   same machinery.

Both are compared against exact enumeration and a naive Monte-Carlo sampler.

Run with::

    python examples/probabilistic_query_evaluation.py
"""

from __future__ import annotations

from repro.applications.pqe import (
    PathQuery,
    PQEReduction,
    ProbabilisticDatabase,
    evaluate_path_query,
    exact_probability,
)
from repro.applications.prob_graph import (
    LayeredProbabilisticGraph,
    homomorphism_probability,
)
from repro.harness.reporting import format_key_values, format_table


def build_database() -> ProbabilisticDatabase:
    """An uncertain two-hop "author wrote paper, paper cites topic" database."""
    database = ProbabilisticDatabase()
    database.add_fact("wrote", "ada", "p1", 0.75)
    database.add_fact("wrote", "ada", "p2", 0.5)
    database.add_fact("wrote", "byron", "p2", 0.25)
    database.add_fact("cites", "p1", "logic", 0.5)
    database.add_fact("cites", "p2", "logic", 0.75)
    return database


def run_pqe() -> None:
    database = build_database()
    query = PathQuery(("wrote", "cites"))
    reduction = PQEReduction(database, query, bits=2)

    print(format_key_values(reduction.reduction_size(), title="PQE coin-word reduction"))
    exact = exact_probability(database, query)
    rows = [
        {"method": "exact (world enumeration)", "probability": round(exact, 5)},
        {
            "method": "exact on coin-word NFA",
            "probability": round(reduction.exact_rounded_probability(), 5),
        },
        {
            "method": "FPRAS (this paper)",
            "probability": round(
                evaluate_path_query(
                    database, query, method="fpras", epsilon=0.25, bits=2, seed=3
                ).probability,
                5,
            ),
        },
        {
            "method": "naive Monte-Carlo (10k worlds)",
            "probability": round(
                evaluate_path_query(
                    database, query, method="montecarlo", num_samples=10_000, seed=3
                ).probability,
                5,
            ),
        },
    ]
    print(format_table(rows, title="P[ ∃x,y,z: wrote(x,y) ∧ cites(y,z) ]"))


def run_graph_homomorphism() -> None:
    graph = LayeredProbabilisticGraph()
    graph.add_layer(["u1", "u2"])       # sources
    graph.add_layer(["v1", "v2", "v3"])  # middle layer
    graph.add_layer(["w1"])              # sink
    graph.add_edge(0, "u1", "v1", 0.5)
    graph.add_edge(0, "u1", "v2", 0.25)
    graph.add_edge(0, "u2", "v2", 0.5)
    graph.add_edge(0, "u2", "v3", 0.75)
    graph.add_edge(1, "v1", "w1", 0.5)
    graph.add_edge(1, "v2", "w1", 0.5)
    graph.add_edge(1, "v3", "w1", 0.25)

    rows = [
        {
            "method": "exact (subgraph enumeration)",
            "probability": round(graph.exact_probability(), 5),
        },
        {
            "method": "FPRAS via #NFA",
            "probability": round(
                homomorphism_probability(graph, method="fpras", epsilon=0.25, seed=9).probability,
                5,
            ),
        },
        {
            "method": "Monte-Carlo on subgraphs",
            "probability": round(graph.montecarlo_probability(10_000, seed=9), 5),
        },
    ]
    print()
    print(format_table(rows, title="P[ a length-2 path survives in the probabilistic graph ]"))


def main() -> None:
    run_pqe()
    run_graph_homomorphism()


if __name__ == "__main__":
    main()
