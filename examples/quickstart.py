"""Quickstart: approximate #NFA counting and almost-uniform sampling.

Builds a small nondeterministic automaton (binary words containing the
pattern ``101``), counts its length-14 slice through the unified counting
façade (``repro.count`` / ``CountingSession``), checks the estimate against
the exact count, and then draws a few almost-uniform accepted words — the
counting↔sampling pair at the heart of the paper.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import NFA, CountingSession, count
from repro.automata.nfa import word_to_string


def build_automaton() -> NFA:
    """Words over {0,1} that contain 101 as a substring (4-state NFA)."""
    return NFA.build(
        [
            # wait in the start state, nondeterministically guess the match...
            ("wait", "0", "wait"),
            ("wait", "1", "wait"),
            ("wait", "1", "saw1"),
            ("saw1", "0", "saw10"),
            ("saw10", "1", "done"),
            # ...then loop forever in the accepting state.
            ("done", "0", "done"),
            ("done", "1", "done"),
        ],
        initial="wait",
        accepting=["done"],
    )


def main() -> None:
    nfa = build_automaton()
    length = 14
    epsilon = 0.2

    # One-shot calls: every counting method goes through repro.count.
    exact = count(nfa, length, method="exact").raw
    report = count(nfa, length, method="fpras", epsilon=epsilon, delta=0.1, seed=2024)

    print(f"automaton: {nfa.num_states} states, {nfa.num_transitions} transitions")
    print(f"exact |L(A_{length})|      = {exact}")
    print(f"FPRAS estimate           = {report.estimate:.1f}")
    print(f"relative error           = {report.relative_error(exact):.3f}")
    print(f"within (1+{epsilon}) guarantee = {report.within_guarantee(exact)}")
    lower, upper = report.error_bounds()
    print(f"guaranteed interval      = [{lower:.1f}, {upper:.1f}]")
    print(f"samples per state (ns)   = {report.details['ns']}")
    print(f"wall-clock seconds       = {report.elapsed_seconds:.3f}")

    # Counting -> sampling through a pinned session: the seed, backend and
    # engine-cache policy are fixed once; repeated calls on the same
    # automaton reuse its engine via the shared registry.
    session = CountingSession(epsilon=0.3, delta=0.1, seed=7)
    sampler = session.sampler(nfa, length)
    print("\nfive (almost) uniform words from L(A_14):")
    for word in sampler.sample_many(5):
        print("  ", word_to_string(word))


if __name__ == "__main__":
    main()
