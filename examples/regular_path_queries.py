"""Regular path queries on a graph database, answered through #NFA.

The paper's primary database motivation: counting (and sampling) the paths
between two nodes of an edge-labeled graph whose labels match a regular
expression reduces, via a linear-size product construction, to #NFA.  This
example builds a small "who knows whom / who works where" graph, counts the
answers of an RPQ exactly and approximately, and samples a few answer paths.

Run with::

    python examples/regular_path_queries.py
"""

from __future__ import annotations

from repro.applications.graphdb import GraphDatabase, RegularPathQuery, RPQCounter
from repro.harness.reporting import format_key_values, format_table


def build_database() -> GraphDatabase:
    return GraphDatabase.from_edges(
        [
            ("alice", "knows", "bob"),
            ("alice", "knows", "carol"),
            ("bob", "knows", "carol"),
            ("bob", "knows", "dave"),
            ("carol", "knows", "dave"),
            ("carol", "knows", "erin"),
            ("dave", "knows", "erin"),
            ("bob", "worksAt", "acme"),
            ("carol", "worksAt", "acme"),
            ("dave", "worksAt", "acme"),
            ("erin", "worksAt", "initech"),
        ]
    )


def main() -> None:
    database = build_database()
    # "Colleagues reachable from alice": follow knows-edges any number of
    # times, then a worksAt edge into acme, using at most 6 edges.
    query = RegularPathQuery(
        source="alice",
        pattern="(<knows>)*<worksAt>",
        target="acme",
        max_length=6,
    )
    counter = RPQCounter(database, query, semantics="paths")

    print(format_key_values(counter.reduction_size(), title="reduction to #NFA"))
    print()

    exact = counter.count_exact()
    approx = counter.count_fpras(epsilon=0.25, seed=11)
    rows = [
        {"method": "exact (#NFA subset DP)", "answers": exact},
        {
            "method": "FPRAS (this paper)",
            "answers": round(approx.estimate, 2),
            "rel_error": round(abs(approx.estimate - exact) / exact, 4) if exact else 0.0,
        },
    ]
    print(format_table(rows, title=f"answers to {query.pattern!r} from alice to acme"))

    print("\nthree sampled answer paths:")
    for path in counter.sample_answers(3, epsilon=0.3, seed=5):
        rendered = " -> ".join(f"{src} -[{label}]" for src, label, _dst in path)
        print("  ", rendered, "->", path[-1][2])

    # Label semantics: count distinct label sequences instead of paths.
    label_counter = RPQCounter(database, query, semantics="labels")
    print(
        f"\ndistinct matching label sequences (length <= {query.max_length}): "
        f"{label_counter.count_exact()}"
    )


if __name__ == "__main__":
    main()
