"""Estimating information leakage from the observable-output automaton.

A "beyond databases" application from the paper's introduction: if the set of
observables a program can emit (log lines, timing buckets, side-channel
traces) is described by an automaton over an output alphabet, then the number
of distinct length-n observables bounds the information an adversary can
learn — ``log2 |L(A_n)|`` bits.  A (1+eps) approximation of the count gives a
``log2(1+eps)``-bit additive bound, so an FPRAS is exactly the right tool.

The example models a toy password checker that emits one comparison-outcome
symbol per character and stops at the first mismatch (the classic segmented
oracle), and compares the leakage bound of the leaky checker against a
constant-time variant.

Run with::

    python examples/information_leakage.py
"""

from __future__ import annotations

from repro.applications.leakage import estimate_leakage_bits
from repro.automata.nfa import NFA
from repro.harness.reporting import format_table


def leaky_checker_observables(secret_length: int) -> NFA:
    """Observable traces of an early-exit comparison over a 4-character secret.

    The checker emits 'm' (match) per matched character and a single 'x' at
    the first mismatch followed by 'p' padding symbols; the adversary sees
    where the comparison stopped.
    """
    transitions = []
    for position in range(secret_length):
        transitions.append((f"c{position}", "m", f"c{position + 1}"))
        transitions.append((f"c{position}", "x", "pad"))
    transitions.append((f"c{secret_length}", "m", f"c{secret_length}"))
    transitions.append(("pad", "p", "pad"))
    return NFA.build(
        transitions,
        initial="c0",
        accepting=[f"c{secret_length}", "pad"],
        alphabet=("m", "x", "p"),
    )


def constant_time_observables(secret_length: int) -> NFA:
    """A constant-time checker emits only a single accept/reject at the end."""
    transitions = []
    for position in range(secret_length - 1):
        transitions.append((f"c{position}", "t", f"c{position + 1}"))
    transitions.append((f"c{secret_length - 1}", "y", "done"))
    transitions.append((f"c{secret_length - 1}", "n", "done"))
    transitions.append(("done", "t", "done"))
    return NFA.build(
        transitions, initial="c0", accepting=["done"], alphabet=("t", "y", "n")
    )


def main() -> None:
    trace_length = 8
    rows = []
    for name, automaton in (
        ("early-exit checker", leaky_checker_observables(8)),
        ("constant-time checker", constant_time_observables(8)),
    ):
        exact = estimate_leakage_bits(automaton, trace_length, method="exact")
        approx = estimate_leakage_bits(
            automaton, trace_length, method="fpras", epsilon=0.2, seed=4
        )
        rows.append(
            {
                "program": name,
                "observables (exact)": int(exact.observable_count),
                "leakage bits (exact)": round(exact.leakage_bits, 3),
                "leakage bits (FPRAS)": round(approx.leakage_bits, 3),
                "error (bits)": round(approx.absolute_error_bits(int(exact.observable_count)), 3),
            }
        )
    print(format_table(rows, title=f"channel-capacity leakage bound, trace length {trace_length}"))
    print(
        "\nThe early-exit checker leaks ~log2(secret length) bits per run;"
        " the constant-time variant leaks at most 1 bit."
    )


if __name__ == "__main__":
    main()
